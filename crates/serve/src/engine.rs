//! The slot-driven serving engine.
//!
//! ## Two clocks
//!
//! The `ygm` virtual clock measures *resource cost* and legitimately
//! differs across rank counts (more ranks, more parallel compute). The
//! *serving clock* is a slot counter layered on top of it
//! ([`ygm::SlotTimer`] pins one loop iteration to `slot_ns` of virtual
//! time): arrivals, batch ages, deadlines, and reported latencies are all
//! measured in slots. Everything SLO-visible therefore depends only on the
//! slot axis — which is identical across rank counts — never on raw
//! virtual timestamps.
//!
//! ## Replicated control plane, distributed data plane
//!
//! Every rank runs the *same* deterministic state machine over the same
//! global logical queue: arrivals (a pure PRF of the serve seed), cache
//! probes, deadline/watermark shedding, degrade-level selection, and batch
//! formation are computed identically everywhere with zero communication —
//! the same philosophy as `ygm::fault`'s replicated fault plans. Only
//! search execution is distributed: each dispatched query is homed on
//! `pool_id % n_ranks` and answered by the reusable
//! [`dnnd::query::SearchEngine`] cascade; results are then replicated to
//! all ranks with an all-gather so every rank's cache and statistics stay
//! bit-identical (asserted at the end of the run — the built-in
//! determinism check).
//!
//! Under a hostile fault profile, transport retransmits observed during a
//! dispatch window are charged against that batch's queries as whole-slot
//! latency penalties (capped), so injected faults surface in the latency
//! SLOs without ever perturbing the control-plane decision sequence.

use crate::cache::{QuantizeKey, ResultCache};
use crate::forensics::{fnv_seed, fnv_u64, hash_quantized_key, ForensicsCollector, QueryForensics};
use crate::params::ServeParams;
use crate::workload::ArrivalPlan;
use dataset::batch::BatchMetric;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use dnnd::query::SearchEngine;
use dnnd::{DistSearchParams, QueryProfile};
use nnd::graph::KnnGraph;
use obs::{RunReport, ServingSection};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use ygm::{all_gather, Comm, SlotTimer, World, WorldReport};

/// Tag for replicating each dispatch's results to every rank.
pub const TAG_RESULTS: u16 = 40;
/// Tag for the end-of-run cross-rank statistics fingerprint check.
pub const TAG_FINGERPRINT: u16 = 41;

/// Most whole-slot latency penalty one dispatch window can absorb from
/// transport retransmits.
const FAULT_PENALTY_CAP_SLOTS: u64 = 4;

/// High-bit namespace for per-query causal flow ids, disjoint from the
/// transport-level ids minted by `ygm::comm::flow_id` (whose top 16 bits
/// are a message tag < 64). OR'd with the query's arrival index.
const QUERY_FLOW_BASE: u64 = 0xFF51_0000_0000_0000;

/// Replicated statistics of one serving run. Identical on every rank and
/// across rank counts for a given `(serve seed, parameters, graph)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServingStats {
    pub serve_seed: u64,
    pub slot_ns: u64,
    /// Serving slots executed (arrivals span plus the drain tail).
    pub slots: u64,
    pub offered: u64,
    pub admitted: u64,
    pub answered: u64,
    pub cache_hits: u64,
    pub cache_evictions: u64,
    pub shed_deadline: u64,
    pub shed_overload: u64,
    /// Queries answered at degrade level >= 1.
    pub degraded: u64,
    pub max_queue_depth: u64,
    /// Whole-slot latency penalties charged for transport retransmits.
    pub fault_penalty_slots: u64,
    /// Exact latency histogram `(latency_slots, count)`, sorted by
    /// latency. Cache hits land in bucket 0.
    pub latency_hist: Vec<(u64, u64)>,
    /// FNV-1a digest over `(arrival idx, result ids)` in arrival order.
    pub result_digest: u64,
}

impl ServingStats {
    /// Total queries that received an answer (search + cache).
    pub fn total_answered(&self) -> u64 {
        self.answered + self.cache_hits
    }

    /// Exact latency percentile in virtual nanoseconds (`q` in `[0, 1]`);
    /// 0 when nothing was answered.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        let total: u64 = self.latency_hist.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return 0;
        }
        let want = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0;
        for &(slots, count) in &self.latency_hist {
            cum += count;
            if cum >= want {
                return slots * self.slot_ns;
            }
        }
        self.latency_hist
            .last()
            .map_or(0, |&(s, _)| s * self.slot_ns)
    }

    /// Mean answered latency in virtual nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        let total: u64 = self.latency_hist.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .latency_hist
            .iter()
            .map(|&(s, c)| (s * self.slot_ns) as f64 * c as f64)
            .sum();
        sum / total as f64
    }

    /// Order-sensitive fingerprint of every replicated field — what the
    /// ranks compare to prove they ran the same control plane.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv_seed();
        for v in [
            self.serve_seed,
            self.slot_ns,
            self.slots,
            self.offered,
            self.admitted,
            self.answered,
            self.cache_hits,
            self.cache_evictions,
            self.shed_deadline,
            self.shed_overload,
            self.degraded,
            self.max_queue_depth,
            self.fault_penalty_slots,
            self.result_digest,
        ] {
            h = fnv_u64(h, v);
        }
        for &(s, c) in &self.latency_hist {
            h = fnv_u64(h, s);
            h = fnv_u64(h, c);
        }
        h
    }

    /// Translate into the run report's schema-v3 `serving` section.
    pub fn to_section(&self) -> ServingSection {
        ServingSection {
            serve_seed: self.serve_seed,
            slot_ns: self.slot_ns,
            slots: self.slots,
            offered: self.offered,
            admitted: self.admitted,
            answered: self.answered,
            cache_hits: self.cache_hits,
            cache_evictions: self.cache_evictions,
            shed_deadline: self.shed_deadline,
            shed_overload: self.shed_overload,
            degraded: self.degraded,
            max_queue_depth: self.max_queue_depth,
            p50_ns: self.percentile_ns(0.50),
            p95_ns: self.percentile_ns(0.95),
            p99_ns: self.percentile_ns(0.99),
            mean_latency_ns: self.mean_latency_ns(),
            latency_hist: self.latency_hist.clone(),
            result_digest: self.result_digest,
        }
    }
}

/// Attach a serving run's statistics to `report` as its schema-v3
/// `serving` section.
pub fn attach_serving(report: &mut RunReport, stats: &ServingStats) {
    report.serving = Some(stats.to_section());
}

/// Everything one rank returns from a serving run. All fields are
/// replicated (identical on every rank).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeOutcome {
    pub stats: ServingStats,
    /// Every answered query: `(arrival idx, pool id, result ids)` in
    /// arrival order. Cache hits carry the cached ids.
    pub answers: Vec<(u64, usize, Vec<PointId>)>,
    /// Per-query lifecycle forensics: the tail-sampled records, stage
    /// waterfalls, and their digest (folded into the cross-rank
    /// fingerprint check).
    pub forensics: QueryForensics,
}

/// A query waiting in the logical frontend queue.
struct Pending {
    idx: u64,
    pool_id: usize,
    arrived_slot: u64,
}

/// Search parameters at a degrade level: level 1 halves epsilon and trims
/// the entry beam to 3/4; level 2 drops to pure greedy on half the beam.
fn degraded_search(base: &DistSearchParams, level: u8) -> DistSearchParams {
    let entries = if base.entry_candidates == 0 {
        base.l
    } else {
        base.entry_candidates
    };
    match level {
        0 => *base,
        1 => DistSearchParams {
            epsilon: base.epsilon * 0.5,
            entry_candidates: (entries * 3 / 4).max(1),
            ..*base
        },
        _ => DistSearchParams {
            epsilon: 0.0,
            entry_candidates: (entries / 2).max(1),
            ..*base
        },
    }
}

/// Dispatch capacity at a degrade level: B, 3B/2, 2B — a loaded frontend
/// trades per-query quality for drain rate.
fn dispatch_capacity(batch: usize, level: u8) -> usize {
    batch * (2 + level as usize) / 2
}

/// Run the serving loop on a live comm (SPMD: all ranks call together
/// inside one `world.run`). Returns the replicated outcome.
pub fn serve_on_comm<P, M>(
    comm: &Comm,
    base: &Arc<PointSet<P>>,
    graph: &Arc<KnnGraph>,
    pool: &Arc<PointSet<P>>,
    metric: &M,
    params: &ServeParams,
) -> ServeOutcome
where
    P: Point + QuantizeKey,
    M: BatchMetric<P>,
{
    params
        .validate()
        .unwrap_or_else(|e| panic!("invalid ServeParams: {e}"));
    let plan = ArrivalPlan::generate(params, pool.len());
    let engine = SearchEngine::new(comm, Arc::clone(base), Arc::clone(graph), metric.clone());
    comm.name_tag(TAG_RESULTS, "serve_results");
    comm.name_tag(TAG_FINGERPRINT, "serve_fingerprint");

    let mut timer = SlotTimer::new(params.slot_ns);
    let mut queue: VecDeque<Pending> = VecDeque::new();
    let mut cache = ResultCache::new(params.cache_capacity);
    let mut hist: BTreeMap<u64, u64> = BTreeMap::new();
    let mut stats = ServingStats {
        serve_seed: params.serve_seed,
        slot_ns: params.slot_ns,
        ..ServingStats::default()
    };
    let mut answers: Vec<(u64, usize, Vec<PointId>)> = Vec::new();
    let mut forensics = ForensicsCollector::new(
        params.serve_seed,
        params.forensics_window_slots,
        params.forensics_slow_n,
        params.deadline_slots,
    );
    let mut next = 0usize;
    let mut slot = 0u64;
    let mut last_retransmits = comm.fault_retransmits();
    let me = comm.rank();
    let n_ranks = comm.n_ranks();

    while next < plan.arrivals.len() || !queue.is_empty() {
        comm.trace_begin_arg("serve_slot", slot);
        // Per-slot control-plane counters (satellite gauges, rank 0).
        let mut slot_cache_hits = 0u64;
        let mut slot_shed = 0u64;
        let mut slot_degraded = 0u64;

        // --- arrivals + cache probes + admission -------------------------
        while next < plan.arrivals.len() && plan.arrivals[next].slot <= slot {
            let a = plan.arrivals[next];
            next += 1;
            stats.offered += 1;
            let key = pool.point(a.pool_id as PointId).quantize(params.quant_step);
            let key_hash = hash_quantized_key(&key);
            // Rank 0 stands in for the frontend: one async lifecycle
            // span per query, opened at arrival and closed at the
            // verdict, joining the per-query flow arrows in the trace.
            if me == 0 {
                comm.trace_async_begin("query", QUERY_FLOW_BASE | a.idx);
            }
            if let Some(ids) = cache.get(&key) {
                stats.cache_hits += 1;
                slot_cache_hits += 1;
                *hist.entry(0).or_insert(0) += 1;
                forensics.cache_hit(a.idx, a.pool_id as u64, key_hash, slot);
                if me == 0 {
                    comm.trace_async_end("query", QUERY_FLOW_BASE | a.idx);
                }
                answers.push((a.idx, a.pool_id, ids));
            } else if queue.len() >= params.shed_watermark {
                stats.shed_overload += 1;
                slot_shed += 1;
                forensics.shed_overload(a.idx, a.pool_id as u64, key_hash, slot);
                if me == 0 {
                    comm.trace_async_end("query", QUERY_FLOW_BASE | a.idx);
                }
            } else {
                queue.push_back(Pending {
                    idx: a.idx,
                    pool_id: a.pool_id,
                    arrived_slot: slot,
                });
                stats.admitted += 1;
            }
        }
        stats.max_queue_depth = stats.max_queue_depth.max(queue.len() as u64);

        // --- deadline shedding -------------------------------------------
        while let Some(front) = queue.front() {
            if slot - front.arrived_slot > params.deadline_slots {
                let p = queue.pop_front().unwrap();
                stats.shed_deadline += 1;
                slot_shed += 1;
                let key = pool.point(p.pool_id as PointId).quantize(params.quant_step);
                forensics.shed_deadline(
                    p.idx,
                    p.pool_id as u64,
                    hash_quantized_key(&key),
                    p.arrived_slot,
                    slot,
                );
                if me == 0 {
                    comm.trace_async_end("query", QUERY_FLOW_BASE | p.idx);
                }
            } else {
                break;
            }
        }

        // --- degrade ladder ----------------------------------------------
        let depth = queue.len();
        let level2_mark = params.degrade_watermark.midpoint(params.shed_watermark);
        let level: u8 = if depth >= level2_mark && depth >= params.degrade_watermark {
            2
        } else if depth >= params.degrade_watermark {
            1
        } else {
            0
        };

        // --- adaptive micro-batch flush ----------------------------------
        let oldest_age = queue.front().map_or(0, |p| slot - p.arrived_slot);
        let flush = !queue.is_empty()
            && (queue.len() >= params.batch || oldest_age >= params.flush_age_slots);
        let mut dispatched = 0u64;
        if flush {
            let take = dispatch_capacity(params.batch, level).min(queue.len());
            let items: Vec<Pending> = queue.drain(..take).collect();
            dispatched = items.len() as u64;
            let sp = degraded_search(&params.search, level);

            // Causal chain per dispatched query: the replicated frontend
            // (rank 0 stands in for it) records the origin half of a flow
            // arrow; the executing home rank records the terminating half
            // below. Pure trace output — stats and the result fingerprint
            // are untouched.
            if me == 0 {
                for p in &items {
                    comm.trace_flow_send("query", QUERY_FLOW_BASE | p.idx, TAG_RESULTS as u64);
                }
            }

            // Distributed data plane: each query executes on its home rank.
            let mine: Vec<(u64, P)> = items
                .iter()
                .filter(|p| p.pool_id % n_ranks == me)
                .map(|p| (p.idx, pool.point(p.pool_id as PointId).clone()))
                .collect();
            for (idx, _) in &mine {
                comm.trace_flow_recv("query", QUERY_FLOW_BASE | *idx, TAG_RESULTS as u64);
            }
            let (my_ids, my_profiles) = engine.run_batch_profiled(comm, &mine, sp);
            let my_results: Vec<(u64, Vec<PointId>, QueryProfile)> = mine
                .iter()
                .map(|(idx, _)| *idx)
                .zip(my_ids.into_iter().zip(my_profiles))
                .map(|(idx, (ids, prof))| (idx, ids, prof))
                .collect();

            // Replicate results so every rank's cache and stats agree.
            let mut all: Vec<(u64, Vec<PointId>, QueryProfile)> =
                all_gather(comm, TAG_RESULTS, &my_results)
                    .into_iter()
                    .flatten()
                    .collect();
            all.sort_unstable_by_key(|&(idx, ..)| idx);

            // Transport retransmits during this window surface as
            // whole-slot latency penalties (stable after the gather's
            // barrier, identical on every rank).
            let rtx = comm.fault_retransmits();
            let penalty = (rtx - last_retransmits).min(FAULT_PENALTY_CAP_SLOTS);
            last_retransmits = rtx;
            stats.fault_penalty_slots += penalty * all.len() as u64;

            for (idx, ids, profile) in all {
                let p = items
                    .iter()
                    .find(|p| p.idx == idx)
                    .expect("result for undispatched query");
                let latency_slots = slot - p.arrived_slot + 1 + penalty;
                *hist.entry(latency_slots).or_insert(0) += 1;
                stats.answered += 1;
                if level > 0 {
                    stats.degraded += 1;
                    slot_degraded += 1;
                }
                let key = pool.point(p.pool_id as PointId).quantize(params.quant_step);
                forensics.answered(
                    idx,
                    p.pool_id as u64,
                    hash_quantized_key(&key),
                    p.arrived_slot,
                    slot,
                    penalty,
                    level as u64,
                    profile.expansions,
                    profile.dist_evals,
                    profile.rounds,
                );
                if me == 0 {
                    comm.trace_async_end("query", QUERY_FLOW_BASE | idx);
                }
                cache.insert(key, ids.clone());
                answers.push((idx, p.pool_id, ids));
            }
        }

        // --- telemetry + slot alignment ----------------------------------
        if me == 0 {
            comm.gauge("serve_queue_depth", queue.len() as f64);
            comm.gauge("serve_dispatched", dispatched as f64);
            comm.gauge("serve_cache_hits", slot_cache_hits as f64);
            comm.gauge("serve_shed", slot_shed as f64);
            comm.gauge("serve_degraded", slot_degraded as f64);
        }
        timer.align(comm);
        comm.barrier();
        comm.trace_end("serve_slot");
        slot += 1;
    }

    stats.slots = slot;
    stats.cache_evictions = cache.evictions();
    answers.sort_unstable_by_key(|&(idx, _, _)| idx);
    let mut digest = fnv_seed();
    for (idx, _, ids) in &answers {
        digest = fnv_u64(digest, *idx);
        for &id in ids {
            digest = fnv_u64(digest, id as u64);
        }
    }
    stats.result_digest = digest;
    stats.latency_hist = hist.into_iter().collect();
    let forensics = forensics.finalize();

    // Built-in determinism check: every rank must have produced the exact
    // same replicated state — the forensics digest is folded in so a
    // divergent lifecycle record trips the assertion too.
    let fps = all_gather(
        comm,
        TAG_FINGERPRINT,
        &fnv_u64(stats.fingerprint(), forensics.digest),
    );
    assert!(
        fps.iter().all(|&f| f == fps[0]),
        "serving control plane diverged across ranks: {fps:?}"
    );

    ServeOutcome {
        stats,
        answers,
        forensics,
    }
}

/// Run a full serving session on `world`. Returns the replicated outcome
/// (identical on every rank, asserted) plus the world report for
/// virtual-time and traffic accounting.
pub fn run_serve<P, M>(
    world: &World,
    base: &Arc<PointSet<P>>,
    graph: &Arc<KnnGraph>,
    pool: &Arc<PointSet<P>>,
    metric: &M,
    params: &ServeParams,
) -> (ServeOutcome, WorldReport<()>)
where
    P: Point + QuantizeKey,
    M: BatchMetric<P>,
{
    let WorldReport {
        results,
        sim_secs,
        sim_ns,
        breakdown,
        phases,
        wall_secs,
        tags,
        total,
        matrix,
        faults,
    } = world.run(|comm| serve_on_comm(comm, base, graph, pool, metric, params));
    let n = results.len();
    let mut it = results.into_iter();
    let first = it.next().expect("world has at least one rank");
    for other in it {
        assert_eq!(other, first, "serving outcome diverged across ranks");
    }
    let report = WorldReport {
        results: vec![(); n],
        sim_secs,
        sim_ns,
        breakdown,
        phases,
        wall_secs,
        tags,
        total,
        matrix,
        faults,
    };
    (first, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_ladder_shapes() {
        let base = DistSearchParams::new(10).epsilon(0.2).entry_candidates(32);
        let l0 = degraded_search(&base, 0);
        assert_eq!(l0, base);
        let l1 = degraded_search(&base, 1);
        assert!((l1.epsilon - 0.1).abs() < 1e-6);
        assert_eq!(l1.entry_candidates, 24);
        let l2 = degraded_search(&base, 2);
        assert_eq!(l2.epsilon, 0.0);
        assert_eq!(l2.entry_candidates, 16);
        // Degradation never invalidates the parameters.
        l1.validate().unwrap();
        l2.validate().unwrap();
        // Entry beam never collapses to zero.
        let tiny = DistSearchParams::new(1).entry_candidates(1);
        assert_eq!(degraded_search(&tiny, 2).entry_candidates, 1);
    }

    #[test]
    fn dispatch_capacity_ladder() {
        assert_eq!(dispatch_capacity(8, 0), 8);
        assert_eq!(dispatch_capacity(8, 1), 12);
        assert_eq!(dispatch_capacity(8, 2), 16);
    }

    #[test]
    fn percentiles_on_exact_hist() {
        let stats = ServingStats {
            slot_ns: 1_000,
            latency_hist: vec![(1, 90), (2, 9), (10, 1)],
            ..ServingStats::default()
        };
        assert_eq!(stats.percentile_ns(0.50), 1_000);
        assert_eq!(stats.percentile_ns(0.95), 2_000);
        assert_eq!(stats.percentile_ns(0.99), 2_000);
        assert_eq!(stats.percentile_ns(1.0), 10_000);
        let mean = stats.mean_latency_ns();
        assert!((mean - (90.0 * 1_000.0 + 9.0 * 2_000.0 + 10_000.0) / 100.0).abs() < 1e-9);
        // Empty histogram reports zeros, not NaN.
        let empty = ServingStats::default();
        assert_eq!(empty.percentile_ns(0.99), 0);
        assert_eq!(empty.mean_latency_ns(), 0.0);
    }

    #[test]
    fn fingerprint_covers_the_histogram() {
        let a = ServingStats {
            latency_hist: vec![(1, 5)],
            ..ServingStats::default()
        };
        let b = ServingStats {
            latency_hist: vec![(1, 6)],
            ..ServingStats::default()
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn section_translation_is_faithful() {
        let stats = ServingStats {
            serve_seed: 7,
            slot_ns: 500,
            slots: 12,
            offered: 30,
            answered: 25,
            cache_hits: 3,
            shed_deadline: 1,
            shed_overload: 1,
            latency_hist: vec![(0, 3), (1, 20), (3, 5)],
            result_digest: 42,
            ..ServingStats::default()
        };
        let s = stats.to_section();
        assert_eq!(s.serve_seed, 7);
        assert_eq!(s.offered, 30);
        assert_eq!(s.p50_ns, stats.percentile_ns(0.5));
        assert_eq!(s.latency_hist, stats.latency_hist);
        assert_eq!(s.result_digest, 42);
        let mut report = RunReport::new("t");
        attach_serving(&mut report, &stats);
        assert_eq!(report.serving.as_ref().unwrap().offered, 30);
        // And it survives the JSON round trip.
        let back = RunReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(back.serving.unwrap(), s);
    }
}
