//! The slot-driven serving engine.
//!
//! ## Two clocks
//!
//! The `ygm` virtual clock measures *resource cost* and legitimately
//! differs across rank counts (more ranks, more parallel compute). The
//! *serving clock* is a slot counter layered on top of it
//! ([`ygm::SlotTimer`] pins one loop iteration to `slot_ns` of virtual
//! time): arrivals, batch ages, deadlines, and reported latencies are all
//! measured in slots. Everything SLO-visible therefore depends only on the
//! slot axis — which is identical across rank counts — never on raw
//! virtual timestamps.
//!
//! ## Replicated control plane, distributed data plane
//!
//! Every rank runs the *same* deterministic state machine over the same
//! global logical queue: arrivals (a pure PRF of the serve seed), cache
//! probes, deadline/watermark shedding, degrade-level selection, and batch
//! formation are computed identically everywhere with zero communication —
//! the same philosophy as `ygm::fault`'s replicated fault plans. Only
//! search execution is distributed: each dispatched query is homed on
//! `pool_id % n_ranks` and answered by the reusable
//! [`dnnd::query::SearchEngine`] cascade; results are then replicated to
//! all ranks with an all-gather so every rank's cache and statistics stay
//! bit-identical (asserted at the end of the run — the built-in
//! determinism check).
//!
//! Under a hostile fault profile, transport retransmits observed during a
//! dispatch window are charged against that batch's queries as whole-slot
//! latency penalties (capped), so injected faults surface in the latency
//! SLOs without ever perturbing the control-plane decision sequence.

use crate::cache::{QuantizeKey, ResultCache};
use crate::forensics::{fnv_seed, fnv_u64, hash_quantized_key, ForensicsCollector, QueryForensics};
use crate::params::ServeParams;
use crate::workload::{
    Arrival, ArrivalPlan, ArrivalProcess, PoolPicker, WorkloadSpec, SALT_COMPACT, SALT_MUTATE,
    SALT_THINK,
};
use dataset::batch::BatchMetric;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use dnnd::query::{IdMask, SearchEngine};
use dnnd::{DistSearchParams, QueryProfile};
use nnd::graph::KnnGraph;
use obs::{RunReport, ServingSection, TenantSloSection, VdbNamespaceSection, VdbSection};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::sync::Arc;
use vdb::{Collection, CollectionStat, MetaRecord, Predicate, Term};
use ygm::fault::mix;
use ygm::{all_gather, Comm, SlotTimer, World, WorldReport};

/// Tag for replicating each dispatch's results to every rank.
pub const TAG_RESULTS: u16 = 40;
/// Tag for the end-of-run cross-rank statistics fingerprint check.
pub const TAG_FINGERPRINT: u16 = 41;

/// Most whole-slot latency penalty one dispatch window can absorb from
/// transport retransmits.
const FAULT_PENALTY_CAP_SLOTS: u64 = 4;

/// High-bit namespace for per-query causal flow ids, disjoint from the
/// transport-level ids minted by `ygm::comm::flow_id` (whose top 16 bits
/// are a message tag < 64). OR'd with the query's arrival index.
const QUERY_FLOW_BASE: u64 = 0xFF51_0000_0000_0000;

/// Replicated statistics of one serving run. Identical on every rank and
/// across rank counts for a given `(serve seed, parameters, graph)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServingStats {
    pub serve_seed: u64,
    pub slot_ns: u64,
    /// Serving slots executed (arrivals span plus the drain tail).
    pub slots: u64,
    pub offered: u64,
    pub admitted: u64,
    pub answered: u64,
    pub cache_hits: u64,
    pub cache_evictions: u64,
    pub shed_deadline: u64,
    pub shed_overload: u64,
    /// Queries answered at degrade level >= 1.
    pub degraded: u64,
    pub max_queue_depth: u64,
    /// Whole-slot latency penalties charged for transport retransmits.
    pub fault_penalty_slots: u64,
    /// Exact latency histogram `(latency_slots, count)`, sorted by
    /// latency. Cache hits land in bucket 0.
    pub latency_hist: Vec<(u64, u64)>,
    /// Exact *client-perceived* latency histogram: done slot minus the
    /// issuing client's **first** attempt at the query, so closed-loop
    /// shed-and-retry time accumulates. Equal to `latency_hist` for an
    /// open loop — the divergence under saturation is coordinated
    /// omission made visible.
    pub client_hist: Vec<(u64, u64)>,
    /// Per-tenant-class SLO accounting, in declaration (priority) order.
    /// Empty when the workload declares no tenant classes.
    pub tenants: Vec<TenantStats>,
    /// Vector-DB product-layer counters; `None` for legacy (namespace-less)
    /// runs, whose fingerprints are byte-identical to pre-vdb builds.
    pub vdb: Option<VdbServeStats>,
    /// FNV-1a digest over `(arrival idx, result ids)` in arrival order.
    pub result_digest: u64,
}

/// Replicated vector-DB counters of one namespaced serving run: the final
/// collection state plus mutation, filter, and cache-suppression totals.
/// Identical on every rank (asserted via the stats fingerprint).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VdbServeStats {
    /// Namespace served.
    pub namespace: String,
    /// Final collection counters (see [`vdb::CollectionStat`]).
    pub points: u64,
    pub live: u64,
    pub tombstones: u64,
    pub dead: u64,
    pub epoch: u64,
    /// Online inserts applied on slot boundaries.
    pub inserts: u64,
    /// Online deletes (tombstones placed) on slot boundaries.
    pub deletes: u64,
    /// Background compaction passes executed.
    pub compactions: u64,
    /// Offered queries that carried a metadata predicate.
    pub filtered: u64,
    /// Ids stripped from cache hits because a tombstone landed after the
    /// entry was cached (deletes do not bump the epoch).
    pub cache_suppressed: u64,
    /// Decile histogram `(decile, count)` of dispatched filtered queries'
    /// mask selectivity, sorted by decile.
    pub selectivity_hist: Vec<(u64, u64)>,
}

impl VdbServeStats {
    /// Translate into the run report's schema-v8 `vdb` section.
    pub fn to_section(&self) -> VdbSection {
        VdbSection {
            namespaces: vec![VdbNamespaceSection {
                name: self.namespace.clone(),
                points: self.points,
                live: self.live,
                tombstones: self.tombstones,
                dead: self.dead,
                epoch: self.epoch,
                inserts: self.inserts,
                deletes: self.deletes,
                compactions: self.compactions,
            }],
            filtered_queries: self.filtered,
            cache_suppressed_ids: self.cache_suppressed,
            selectivity_hist: self.selectivity_hist.clone(),
        }
    }
}

/// Per-tenant-class slice of a run's SLO accounting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantStats {
    pub name: String,
    pub share_pct: u64,
    pub offered: u64,
    pub admitted: u64,
    pub answered: u64,
    pub cache_hits: u64,
    pub shed_overload: u64,
    pub shed_deadline: u64,
    pub degraded: u64,
    /// Exact latency histogram of this class's answered queries (cache
    /// hits in bucket 0).
    pub latency_hist: Vec<(u64, u64)>,
}

impl TenantStats {
    /// Queries of this class that received an answer (search + cache).
    pub fn total_answered(&self) -> u64 {
        self.answered + self.cache_hits
    }

    /// SLO attainment: fraction of offered queries answered (0 when
    /// nothing was offered).
    pub fn slo_attainment(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.total_answered() as f64 / self.offered as f64
        }
    }

    /// Exact latency percentile of this class in virtual nanoseconds.
    pub fn percentile_ns(&self, q: f64, slot_ns: u64) -> u64 {
        hist_percentile_slots(&self.latency_hist, q).unwrap_or(0) * slot_ns
    }
}

/// Exact percentile over a `(slots, count)` histogram; `None` when empty.
fn hist_percentile_slots(hist: &[(u64, u64)], q: f64) -> Option<u64> {
    let total: u64 = hist.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return None;
    }
    let want = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0;
    for &(slots, count) in hist {
        cum += count;
        if cum >= want {
            return Some(slots);
        }
    }
    hist.last().map(|&(s, _)| s)
}

impl ServingStats {
    /// Total queries that received an answer (search + cache).
    pub fn total_answered(&self) -> u64 {
        self.answered + self.cache_hits
    }

    /// Exact latency percentile in virtual nanoseconds (`q` in `[0, 1]`);
    /// 0 when nothing was answered.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        hist_percentile_slots(&self.latency_hist, q).unwrap_or(0) * self.slot_ns
    }

    /// Exact *client-perceived* latency percentile in virtual
    /// nanoseconds: measured from each query's first issue, so
    /// closed-loop retry time counts. Diverges upward from
    /// [`Self::percentile_ns`] exactly when coordinated omission would
    /// hide queueing pain.
    pub fn client_percentile_ns(&self, q: f64) -> u64 {
        hist_percentile_slots(&self.client_hist, q).unwrap_or(0) * self.slot_ns
    }

    /// Mean answered latency in virtual nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        let total: u64 = self.latency_hist.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .latency_hist
            .iter()
            .map(|&(s, c)| (s * self.slot_ns) as f64 * c as f64)
            .sum();
        sum / total as f64
    }

    /// Order-sensitive fingerprint of every replicated field — what the
    /// ranks compare to prove they ran the same control plane.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv_seed();
        for v in [
            self.serve_seed,
            self.slot_ns,
            self.slots,
            self.offered,
            self.admitted,
            self.answered,
            self.cache_hits,
            self.cache_evictions,
            self.shed_deadline,
            self.shed_overload,
            self.degraded,
            self.max_queue_depth,
            self.fault_penalty_slots,
            self.result_digest,
        ] {
            h = fnv_u64(h, v);
        }
        for &(s, c) in &self.latency_hist {
            h = fnv_u64(h, s);
            h = fnv_u64(h, c);
        }
        for &(s, c) in &self.client_hist {
            h = fnv_u64(h, s);
            h = fnv_u64(h, c);
        }
        for t in &self.tenants {
            h = fnv_u64(h, t.name.len() as u64);
            for b in t.name.bytes() {
                h = fnv_u64(h, b as u64);
            }
            for v in [
                t.share_pct,
                t.offered,
                t.admitted,
                t.answered,
                t.cache_hits,
                t.shed_overload,
                t.shed_deadline,
                t.degraded,
            ] {
                h = fnv_u64(h, v);
            }
            for &(s, c) in &t.latency_hist {
                h = fnv_u64(h, s);
                h = fnv_u64(h, c);
            }
        }
        // Folded only when present, so legacy fingerprints are unchanged.
        if let Some(v) = &self.vdb {
            h = fnv_u64(h, v.namespace.len() as u64);
            for b in v.namespace.bytes() {
                h = fnv_u64(h, b as u64);
            }
            for x in [
                v.points,
                v.live,
                v.tombstones,
                v.dead,
                v.epoch,
                v.inserts,
                v.deletes,
                v.compactions,
                v.filtered,
                v.cache_suppressed,
            ] {
                h = fnv_u64(h, x);
            }
            for &(d, c) in &v.selectivity_hist {
                h = fnv_u64(h, d);
                h = fnv_u64(h, c);
            }
        }
        h
    }

    /// Translate into the run report's schema-v3 `serving` section.
    pub fn to_section(&self) -> ServingSection {
        ServingSection {
            serve_seed: self.serve_seed,
            slot_ns: self.slot_ns,
            slots: self.slots,
            offered: self.offered,
            admitted: self.admitted,
            answered: self.answered,
            cache_hits: self.cache_hits,
            cache_evictions: self.cache_evictions,
            shed_deadline: self.shed_deadline,
            shed_overload: self.shed_overload,
            degraded: self.degraded,
            max_queue_depth: self.max_queue_depth,
            p50_ns: self.percentile_ns(0.50),
            p95_ns: self.percentile_ns(0.95),
            p99_ns: self.percentile_ns(0.99),
            mean_latency_ns: self.mean_latency_ns(),
            latency_hist: self.latency_hist.clone(),
            client_p50_ns: self.client_percentile_ns(0.50),
            client_p99_ns: self.client_percentile_ns(0.99),
            client_hist: self.client_hist.clone(),
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantSloSection {
                    name: t.name.clone(),
                    share_pct: t.share_pct,
                    offered: t.offered,
                    admitted: t.admitted,
                    answered: t.answered,
                    cache_hits: t.cache_hits,
                    shed_overload: t.shed_overload,
                    shed_deadline: t.shed_deadline,
                    degraded: t.degraded,
                    slo_attainment: t.slo_attainment(),
                    p50_ns: t.percentile_ns(0.50, self.slot_ns),
                    p99_ns: t.percentile_ns(0.99, self.slot_ns),
                    latency_hist: t.latency_hist.clone(),
                })
                .collect(),
            result_digest: self.result_digest,
        }
    }
}

/// Attach a serving run's statistics to `report` as its schema-v3
/// `serving` section.
pub fn attach_serving(report: &mut RunReport, stats: &ServingStats) {
    report.serving = Some(stats.to_section());
}

/// Attach a namespaced serving run's vector-DB counters to `report` as
/// its schema-v8 `vdb` section. No-op for legacy runs (`stats.vdb` is
/// `None`), so the report stays byte-identical to pre-vdb builds.
pub fn attach_vdb(report: &mut RunReport, stats: &ServingStats) {
    if let Some(v) = &stats.vdb {
        report.vdb = Some(v.to_section());
    }
}

/// Everything one rank returns from a serving run. All fields are
/// replicated (identical on every rank).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeOutcome {
    pub stats: ServingStats,
    /// Every answered query: `(arrival idx, pool id, result ids)` in
    /// arrival order. Cache hits carry the cached ids.
    pub answers: Vec<(u64, usize, Vec<PointId>)>,
    /// Every arrival the run actually issued, in issue order: the static
    /// plan for an open loop, the minted log for closed-loop clients
    /// (retries included). Part of the replicated state the cross-rank
    /// equality assertion covers.
    pub arrivals: Vec<Arrival>,
    /// Per-query lifecycle forensics: the tail-sampled records, stage
    /// waterfalls, and their digest (folded into the cross-rank
    /// fingerprint check).
    pub forensics: QueryForensics,
}

/// In-loop per-tenant counters; folded into [`TenantStats`] at the end.
#[derive(Default)]
struct TenantAcc {
    offered: u64,
    admitted: u64,
    answered: u64,
    cache_hits: u64,
    shed_overload: u64,
    shed_deadline: u64,
    degraded: u64,
    hist: BTreeMap<u64, u64>,
}

/// A query waiting in its tenant's frontend queue.
struct Pending {
    idx: u64,
    pool_id: usize,
    tenant: usize,
    client: u64,
    arrived_slot: u64,
    first_issue_slot: u64,
}

/// Where the engine gets its arrivals: the pregenerated open-loop plan,
/// or closed-loop clients minting queries as their predecessors complete.
enum ArrivalSource {
    Open { arrivals: Vec<Arrival>, next: usize },
    Closed(Box<ClosedLoop>),
}

impl ArrivalSource {
    fn new(params: &ServeParams, pool_len: usize) -> ArrivalSource {
        match params.workload.arrival {
            ArrivalProcess::Open => ArrivalSource::Open {
                arrivals: ArrivalPlan::try_generate(params, pool_len)
                    .unwrap_or_else(|e| panic!("invalid workload: {e}"))
                    .arrivals,
                next: 0,
            },
            ArrivalProcess::Closed { clients, think_ns } => ArrivalSource::Closed(Box::new(
                ClosedLoop::new(params, pool_len, clients, think_ns),
            )),
        }
    }

    /// Whether more queries can still arrive (the slot loop additionally
    /// drains the queues before exiting).
    fn has_more(&self) -> bool {
        match self {
            ArrivalSource::Open { arrivals, next } => *next < arrivals.len(),
            ArrivalSource::Closed(c) => c.issued < c.budget,
        }
    }

    /// Append the arrivals landing in `slot`, in deterministic order.
    fn poll(&mut self, slot: u64, out: &mut Vec<Arrival>) {
        match self {
            ArrivalSource::Open { arrivals, next } => {
                while *next < arrivals.len() && arrivals[*next].slot <= slot {
                    out.push(arrivals[*next]);
                    *next += 1;
                }
            }
            ArrivalSource::Closed(c) => c.poll(slot, out),
        }
    }

    /// A query reached its verdict (answered, cache hit, or shed) at
    /// `done_slot`. Closed-loop clients schedule their next issue here —
    /// retrying shed queries with the original first-issue slot, so
    /// client-perceived latency keeps accumulating across retries.
    fn on_complete(
        &mut self,
        client: u64,
        pool_id: usize,
        first_issue_slot: u64,
        done_slot: u64,
        shed: bool,
    ) {
        if let ArrivalSource::Closed(c) = self {
            c.on_complete(client, pool_id, first_issue_slot, done_slot, shed);
        }
    }

    /// Every arrival the run issued, for [`ServeOutcome::arrivals`].
    fn into_log(self) -> Vec<Arrival> {
        match self {
            ArrivalSource::Open { arrivals, .. } => arrivals,
            ArrivalSource::Closed(c) => c.log,
        }
    }
}

/// Closed-loop client population. Every state transition is driven by
/// replicated slot-clock events and pure PRF draws, so the minted arrival
/// sequence is identical across reruns and rank counts.
struct ClosedLoop {
    serve_seed: u64,
    slot_ns: u64,
    think_ns: u64,
    /// Total issues the run may make (`ServeParams::n_arrivals`),
    /// retries of shed queries included.
    budget: u64,
    issued: u64,
    spec: WorkloadSpec,
    picker: PoolPicker,
    clients: Vec<ClientState>,
    log: Vec<Arrival>,
}

struct ClientState {
    tenant: usize,
    /// Earliest slot this client may issue its next query.
    next_issue: u64,
    /// Think-time draws consumed (streams the think PRF per client).
    seq: u64,
    /// Shed query to reissue: `(pool_id, first_issue_slot)`.
    retry: Option<(usize, u64)>,
    in_flight: bool,
}

impl ClosedLoop {
    fn new(params: &ServeParams, pool_len: usize, clients: u64, think_ns: u64) -> ClosedLoop {
        let mut cl = ClosedLoop {
            serve_seed: params.serve_seed,
            slot_ns: params.slot_ns,
            think_ns,
            budget: params.n_arrivals as u64,
            issued: 0,
            spec: params.workload.clone(),
            picker: PoolPicker::new(params, pool_len),
            clients: Vec::new(),
            log: Vec::new(),
        };
        for c in 0..clients {
            let tenant = cl.spec.tenant_of(params.serve_seed, c);
            // Stagger initial issues by one think draw so the population
            // doesn't stampede slot 0 (think 0 starts everyone at 0).
            let next_issue = cl.think_slots(c, 0, 0);
            cl.clients.push(ClientState {
                tenant,
                next_issue,
                seq: 1,
                retry: None,
                in_flight: false,
            });
        }
        cl
    }

    /// Exponential think time in slots, scaled *down* by the rate
    /// modulators: a flash crowd makes closed-loop clients more eager —
    /// the analogue of thinning's rate boost for the open loop.
    fn think_slots(&self, client: u64, seq: u64, now_slot: u64) -> u64 {
        if self.think_ns == 0 {
            return 0;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(mix(self.serve_seed, SALT_THINK, client, seq, 0));
        let u: f64 = rng.gen_range(0.0..1.0);
        let mult = self.spec.multiplier(now_slot * self.slot_ns).max(1e-9);
        (-(1.0 - u).ln() * self.think_ns as f64 / mult / self.slot_ns as f64) as u64
    }

    fn poll(&mut self, slot: u64, out: &mut Vec<Arrival>) {
        for c in 0..self.clients.len() {
            if self.issued >= self.budget {
                break;
            }
            let st = &self.clients[c];
            if st.in_flight || st.next_issue > slot {
                continue;
            }
            let idx = self.issued;
            self.issued += 1;
            let (pool_id, first_issue_slot) = match self.clients[c].retry.take() {
                Some((p, f)) => (p, f),
                None => (self.picker.pick(self.serve_seed, idx), slot),
            };
            self.clients[c].in_flight = true;
            let a = Arrival {
                idx,
                slot,
                pool_id,
                tenant: self.clients[c].tenant,
                client: c as u64,
                first_issue_slot,
            };
            self.log.push(a);
            out.push(a);
        }
    }

    fn on_complete(
        &mut self,
        client: u64,
        pool_id: usize,
        first_issue_slot: u64,
        done_slot: u64,
        shed: bool,
    ) {
        let seq = self.clients[client as usize].seq;
        let think = self.think_slots(client, seq, done_slot);
        let st = &mut self.clients[client as usize];
        st.in_flight = false;
        st.seq += 1;
        st.retry = if shed {
            Some((pool_id, first_issue_slot))
        } else {
            None
        };
        st.next_issue = done_slot + 1 + think;
    }
}

/// Search parameters at a degrade level: level 1 halves epsilon and trims
/// the entry beam to 3/4; level 2 drops to pure greedy on half the beam.
fn degraded_search(base: &DistSearchParams, level: u8) -> DistSearchParams {
    let entries = if base.entry_candidates == 0 {
        base.l
    } else {
        base.entry_candidates
    };
    match level {
        0 => *base,
        1 => DistSearchParams {
            epsilon: base.epsilon * 0.5,
            entry_candidates: (entries * 3 / 4).max(1),
            ..*base
        },
        _ => DistSearchParams {
            epsilon: 0.0,
            entry_candidates: (entries / 2).max(1),
            ..*base
        },
    }
}

/// Dispatch capacity at a degrade level: B, 3B/2, 2B — a loaded frontend
/// trades per-query quality for drain rate.
fn dispatch_capacity(batch: usize, level: u8) -> usize {
    batch * (2 + level as usize) / 2
}

/// The vector-DB extension points of the slot loop. The legacy
/// (namespace-less) engine runs with the no-op [`NoVdb`] impl, which keeps
/// every control-plane decision, cache key, and search call byte-identical
/// to the pre-vdb engine; [`VdbState`] implements the namespaced product
/// layer. All methods are replicated: every rank calls them with the same
/// arguments in the same order and must get the same answers.
trait VdbHooks<P: Point> {
    /// Called at the top of every slot, before arrivals. Applies any
    /// scheduled mutations (online inserts/deletes, background
    /// compaction); returns the new `(base, graph)` when the adjacency
    /// changed and the search engine must be rebuilt.
    fn on_slot(&mut self, slot: u64) -> Option<(Arc<PointSet<P>>, Arc<KnnGraph>)>;
    /// Called once per offered arrival (filtered-traffic accounting).
    fn on_arrival(&mut self, idx: u64);
    /// Result-cache key prefix for arrival `idx` — empty in legacy mode,
    /// `[namespace fnv, predicate fnv, graph epoch]` in vdb mode.
    /// Recomputed at every use so an epoch bump between a query's arrival
    /// and its answer lands in the key it is cached under.
    fn key_prefix(&mut self, idx: u64) -> Vec<i64>;
    /// Allow-list for a *dispatched* query, compiled at dispatch time so
    /// tombstones placed after admission are honored. `None` = unmasked
    /// (the byte-identical legacy search path).
    fn mask_for(&mut self, idx: u64) -> Option<Arc<IdMask>>;
    /// Strip ids no longer visible from a cache hit's result (deletes do
    /// not bump the epoch, so live entries can hold tombstoned ids).
    fn filter_cached(&mut self, ids: &mut Vec<PointId>);
    /// Final counters for [`ServingStats::vdb`]; `None` in legacy mode.
    fn take_stats(&mut self) -> Option<VdbServeStats>;
}

/// The legacy no-op hooks: no mutations, no prefixes, no masks.
struct NoVdb;

impl<P: Point> VdbHooks<P> for NoVdb {
    fn on_slot(&mut self, _slot: u64) -> Option<(Arc<PointSet<P>>, Arc<KnnGraph>)> {
        None
    }
    fn on_arrival(&mut self, _idx: u64) {}
    fn key_prefix(&mut self, _idx: u64) -> Vec<i64> {
        Vec::new()
    }
    fn mask_for(&mut self, _idx: u64) -> Option<Arc<IdMask>> {
        None
    }
    fn filter_cached(&mut self, _ids: &mut Vec<PointId>) {}
    fn take_stats(&mut self) -> Option<VdbServeStats> {
        None
    }
}

/// Run the serving loop on a live comm (SPMD: all ranks call together
/// inside one `world.run`). Returns the replicated outcome.
pub fn serve_on_comm<P, M>(
    comm: &Comm,
    base: &Arc<PointSet<P>>,
    graph: &Arc<KnnGraph>,
    pool: &Arc<PointSet<P>>,
    metric: &M,
    params: &ServeParams,
) -> ServeOutcome
where
    P: Point + QuantizeKey,
    M: BatchMetric<P>,
{
    serve_loop(comm, base, graph, pool, metric, params, &mut NoVdb)
}

/// The slot loop shared by the legacy and vdb engines; `hooks` is the only
/// thing that differs between them.
fn serve_loop<P, M, H>(
    comm: &Comm,
    base: &Arc<PointSet<P>>,
    graph: &Arc<KnnGraph>,
    pool: &Arc<PointSet<P>>,
    metric: &M,
    params: &ServeParams,
    hooks: &mut H,
) -> ServeOutcome
where
    P: Point + QuantizeKey,
    M: BatchMetric<P>,
    H: VdbHooks<P>,
{
    params
        .validate()
        .unwrap_or_else(|e| panic!("invalid ServeParams: {e}"));
    let spec = params.workload.clone();
    let n_classes = spec.n_tenant_classes();
    // Per-class queue quota: ceil(share% of the shed watermark), at least
    // 1. The implicit single class gets the whole watermark, which makes
    // the quota check coincide exactly with the legacy global one.
    let quotas: Vec<usize> = if spec.tenants.is_empty() {
        vec![params.shed_watermark]
    } else {
        spec.tenants
            .iter()
            .map(|t| ((params.shed_watermark as u64 * t.share_pct).div_ceil(100)).max(1) as usize)
            .collect()
    };
    let mut source = ArrivalSource::new(params, pool.len());
    let mut engine = SearchEngine::new(comm, Arc::clone(base), Arc::clone(graph), metric.clone());
    comm.name_tag(TAG_RESULTS, "serve_results");
    comm.name_tag(TAG_FINGERPRINT, "serve_fingerprint");

    let mut timer = SlotTimer::new(params.slot_ns);
    // One FIFO per tenant class; dispatch drains them in declaration
    // (priority) order.
    let mut queues: Vec<VecDeque<Pending>> = (0..n_classes).map(|_| VecDeque::new()).collect();
    let mut tacc: Vec<TenantAcc> = (0..n_classes).map(|_| TenantAcc::default()).collect();
    let mut cache = ResultCache::new(params.cache_capacity);
    let mut hist: BTreeMap<u64, u64> = BTreeMap::new();
    let mut client_hist: BTreeMap<u64, u64> = BTreeMap::new();
    let mut stats = ServingStats {
        serve_seed: params.serve_seed,
        slot_ns: params.slot_ns,
        ..ServingStats::default()
    };
    let mut answers: Vec<(u64, usize, Vec<PointId>)> = Vec::new();
    let mut forensics = ForensicsCollector::new(
        params.serve_seed,
        params.forensics_window_slots,
        params.forensics_slow_n,
        params.deadline_slots,
    );
    let mut arrivals_now: Vec<Arrival> = Vec::new();
    let mut slot = 0u64;
    let mut last_retransmits = comm.fault_retransmits();
    let me = comm.rank();
    let n_ranks = comm.n_ranks();

    while source.has_more() || queues.iter().any(|q| !q.is_empty()) {
        comm.trace_begin_arg("serve_slot", slot);
        // Vdb mutations land on the slot boundary, before arrivals. An
        // adjacency change (ingest/compaction) rebuilds the search engine;
        // `ygm` handler registration is last-write-wins, so re-registering
        // the query protocol mid-run is safe.
        if let Some((b, g)) = hooks.on_slot(slot) {
            engine = SearchEngine::new(comm, b, g, metric.clone());
        }
        // Per-slot control-plane counters (satellite gauges, rank 0).
        let mut slot_cache_hits = 0u64;
        let mut slot_shed = 0u64;
        let mut slot_degraded = 0u64;

        // --- arrivals + cache probes + admission -------------------------
        arrivals_now.clear();
        source.poll(slot, &mut arrivals_now);
        for &a in &arrivals_now {
            stats.offered += 1;
            tacc[a.tenant].offered += 1;
            hooks.on_arrival(a.idx);
            // The cache key is the hooks prefix (empty in legacy mode)
            // followed by the quantized query vector, so a namespace, a
            // predicate, or an epoch bump each isolate their own entries.
            let mut key = hooks.key_prefix(a.idx);
            key.extend(pool.point(a.pool_id as PointId).quantize(params.quant_step));
            let key_hash = hash_quantized_key(&key);
            // Rank 0 stands in for the frontend: one async lifecycle
            // span per query, opened at arrival and closed at the
            // verdict, joining the per-query flow arrows in the trace.
            if me == 0 {
                comm.trace_async_begin("query", QUERY_FLOW_BASE | a.idx);
            }
            let depth: usize = queues.iter().map(|q| q.len()).sum();
            if let Some(mut ids) = cache.get(&key) {
                // Same-epoch entries can still hold ids tombstoned after
                // they were cached (deletes don't bump the epoch); strip
                // them at hit time so a delete is honored immediately.
                hooks.filter_cached(&mut ids);
                stats.cache_hits += 1;
                slot_cache_hits += 1;
                tacc[a.tenant].cache_hits += 1;
                *hist.entry(0).or_insert(0) += 1;
                *tacc[a.tenant].hist.entry(0).or_insert(0) += 1;
                *client_hist.entry(slot - a.first_issue_slot).or_insert(0) += 1;
                forensics.cache_hit(a.idx, a.pool_id as u64, a.tenant as u64, key_hash, slot);
                if me == 0 {
                    comm.trace_async_end("query", QUERY_FLOW_BASE | a.idx);
                }
                answers.push((a.idx, a.pool_id, ids));
                source.on_complete(a.client, a.pool_id, a.first_issue_slot, slot, false);
            } else if depth >= params.shed_watermark || queues[a.tenant].len() >= quotas[a.tenant] {
                stats.shed_overload += 1;
                slot_shed += 1;
                tacc[a.tenant].shed_overload += 1;
                forensics.shed_overload(a.idx, a.pool_id as u64, a.tenant as u64, key_hash, slot);
                if me == 0 {
                    comm.trace_async_end("query", QUERY_FLOW_BASE | a.idx);
                }
                source.on_complete(a.client, a.pool_id, a.first_issue_slot, slot, true);
            } else {
                queues[a.tenant].push_back(Pending {
                    idx: a.idx,
                    pool_id: a.pool_id,
                    tenant: a.tenant,
                    client: a.client,
                    arrived_slot: slot,
                    first_issue_slot: a.first_issue_slot,
                });
                stats.admitted += 1;
                tacc[a.tenant].admitted += 1;
            }
        }
        let depth: usize = queues.iter().map(|q| q.len()).sum();
        stats.max_queue_depth = stats.max_queue_depth.max(depth as u64);

        // --- deadline shedding -------------------------------------------
        for t in 0..n_classes {
            while let Some(front) = queues[t].front() {
                if slot - front.arrived_slot > params.deadline_slots {
                    let p = queues[t].pop_front().unwrap();
                    stats.shed_deadline += 1;
                    slot_shed += 1;
                    tacc[t].shed_deadline += 1;
                    let mut key = hooks.key_prefix(p.idx);
                    key.extend(pool.point(p.pool_id as PointId).quantize(params.quant_step));
                    forensics.shed_deadline(
                        p.idx,
                        p.pool_id as u64,
                        p.tenant as u64,
                        hash_quantized_key(&key),
                        p.arrived_slot,
                        slot,
                    );
                    if me == 0 {
                        comm.trace_async_end("query", QUERY_FLOW_BASE | p.idx);
                    }
                    source.on_complete(p.client, p.pool_id, p.first_issue_slot, slot, true);
                } else {
                    break;
                }
            }
        }

        // --- degrade ladder ----------------------------------------------
        let depth: usize = queues.iter().map(|q| q.len()).sum();
        let level2_mark = params.degrade_watermark.midpoint(params.shed_watermark);
        let level: u8 = if depth >= level2_mark && depth >= params.degrade_watermark {
            2
        } else if depth >= params.degrade_watermark {
            1
        } else {
            0
        };

        // --- adaptive micro-batch flush ----------------------------------
        let oldest_age = queues
            .iter()
            .filter_map(|q| q.front().map(|p| slot - p.arrived_slot))
            .max()
            .unwrap_or(0);
        let flush = depth > 0 && (depth >= params.batch || oldest_age >= params.flush_age_slots);
        let mut dispatched = 0u64;
        if flush {
            let take = dispatch_capacity(params.batch, level).min(depth);
            // Priority drain: higher classes (declared earlier) fill the
            // dispatch window first; within a class, FIFO.
            let mut items: Vec<Pending> = Vec::with_capacity(take);
            for q in queues.iter_mut() {
                while items.len() < take {
                    match q.pop_front() {
                        Some(p) => items.push(p),
                        None => break,
                    }
                }
            }
            dispatched = items.len() as u64;
            let sp = degraded_search(&params.search, level);

            // Causal chain per dispatched query: the replicated frontend
            // (rank 0 stands in for it) records the origin half of a flow
            // arrow; the executing home rank records the terminating half
            // below. Pure trace output — stats and the result fingerprint
            // are untouched.
            if me == 0 {
                for p in &items {
                    comm.trace_flow_send("query", QUERY_FLOW_BASE | p.idx, TAG_RESULTS as u64);
                }
            }

            // Masks are compiled at dispatch time (not admission), on
            // every rank for every item — so tombstones placed while a
            // query sat in the queue are honored, and the hooks' filter
            // accounting stays replicated across ranks.
            let masks_all: Vec<Option<Arc<IdMask>>> =
                items.iter().map(|p| hooks.mask_for(p.idx)).collect();

            // Distributed data plane: each query executes on its home rank.
            let mine_at: Vec<usize> = (0..items.len())
                .filter(|&i| items[i].pool_id % n_ranks == me)
                .collect();
            let mine: Vec<(u64, P)> = mine_at
                .iter()
                .map(|&i| {
                    (
                        items[i].idx,
                        pool.point(items[i].pool_id as PointId).clone(),
                    )
                })
                .collect();
            let mine_masks: Vec<Option<Arc<IdMask>>> =
                mine_at.iter().map(|&i| masks_all[i].clone()).collect();
            for (idx, _) in &mine {
                comm.trace_flow_recv("query", QUERY_FLOW_BASE | *idx, TAG_RESULTS as u64);
            }
            let (my_ids, my_profiles) = engine.run_batch_masked(comm, &mine, &mine_masks, sp);
            let my_results: Vec<(u64, Vec<PointId>, QueryProfile)> = mine
                .iter()
                .map(|(idx, _)| *idx)
                .zip(my_ids.into_iter().zip(my_profiles))
                .map(|(idx, (ids, prof))| (idx, ids, prof))
                .collect();

            // Replicate results so every rank's cache and stats agree.
            let mut all: Vec<(u64, Vec<PointId>, QueryProfile)> =
                all_gather(comm, TAG_RESULTS, &my_results)
                    .into_iter()
                    .flatten()
                    .collect();
            all.sort_unstable_by_key(|&(idx, ..)| idx);

            // Transport retransmits during this window surface as
            // whole-slot latency penalties (stable after the gather's
            // barrier, identical on every rank).
            let rtx = comm.fault_retransmits();
            let penalty = (rtx - last_retransmits).min(FAULT_PENALTY_CAP_SLOTS);
            last_retransmits = rtx;
            stats.fault_penalty_slots += penalty * all.len() as u64;

            for (idx, ids, profile) in all {
                let p = items
                    .iter()
                    .find(|p| p.idx == idx)
                    .expect("result for undispatched query");
                let latency_slots = slot - p.arrived_slot + 1 + penalty;
                *hist.entry(latency_slots).or_insert(0) += 1;
                *tacc[p.tenant].hist.entry(latency_slots).or_insert(0) += 1;
                // Client-perceived latency anchors on the first issue, so
                // closed-loop shed-and-retry time is charged in full.
                *client_hist
                    .entry(latency_slots + (p.arrived_slot - p.first_issue_slot))
                    .or_insert(0) += 1;
                stats.answered += 1;
                tacc[p.tenant].answered += 1;
                if level > 0 {
                    stats.degraded += 1;
                    tacc[p.tenant].degraded += 1;
                    slot_degraded += 1;
                }
                // Fresh prefix: an epoch bump since arrival means the
                // result (computed against the current graph) is cached
                // under the current epoch's key.
                let mut key = hooks.key_prefix(idx);
                key.extend(pool.point(p.pool_id as PointId).quantize(params.quant_step));
                forensics.answered(
                    idx,
                    p.pool_id as u64,
                    p.tenant as u64,
                    hash_quantized_key(&key),
                    p.arrived_slot,
                    slot,
                    penalty,
                    level as u64,
                    profile.expansions,
                    profile.dist_evals,
                    profile.rounds,
                );
                if me == 0 {
                    comm.trace_async_end("query", QUERY_FLOW_BASE | idx);
                }
                cache.insert(key, ids.clone());
                answers.push((idx, p.pool_id, ids));
                source.on_complete(
                    p.client,
                    p.pool_id,
                    p.first_issue_slot,
                    p.arrived_slot + latency_slots,
                    false,
                );
            }
        }

        // --- telemetry + slot alignment ----------------------------------
        if me == 0 {
            comm.gauge(
                "serve_queue_depth",
                queues.iter().map(|q| q.len()).sum::<usize>() as f64,
            );
            comm.gauge("serve_dispatched", dispatched as f64);
            comm.gauge("serve_cache_hits", slot_cache_hits as f64);
            comm.gauge("serve_shed", slot_shed as f64);
            comm.gauge("serve_degraded", slot_degraded as f64);
        }
        timer.align(comm);
        comm.barrier();
        comm.trace_end("serve_slot");
        slot += 1;
    }

    stats.slots = slot;
    stats.cache_evictions = cache.evictions();
    answers.sort_unstable_by_key(|&(idx, _, _)| idx);
    let mut digest = fnv_seed();
    for (idx, _, ids) in &answers {
        digest = fnv_u64(digest, *idx);
        for &id in ids {
            digest = fnv_u64(digest, id as u64);
        }
    }
    stats.result_digest = digest;
    stats.latency_hist = hist.into_iter().collect();
    stats.client_hist = client_hist.into_iter().collect();
    if !spec.tenants.is_empty() {
        stats.tenants = spec
            .tenants
            .iter()
            .zip(tacc)
            .map(|(tc, acc)| TenantStats {
                name: tc.name.clone(),
                share_pct: tc.share_pct,
                offered: acc.offered,
                admitted: acc.admitted,
                answered: acc.answered,
                cache_hits: acc.cache_hits,
                shed_overload: acc.shed_overload,
                shed_deadline: acc.shed_deadline,
                degraded: acc.degraded,
                latency_hist: acc.hist.into_iter().collect(),
            })
            .collect();
    }
    stats.vdb = hooks.take_stats();
    let forensics = forensics.finalize();

    // Built-in determinism check: every rank must have produced the exact
    // same replicated state — the forensics digest is folded in so a
    // divergent lifecycle record trips the assertion too.
    let fps = all_gather(
        comm,
        TAG_FINGERPRINT,
        &fnv_u64(stats.fingerprint(), forensics.digest),
    );
    assert!(
        fps.iter().all(|&f| f == fps[0]),
        "serving control plane diverged across ranks: {fps:?}"
    );

    ServeOutcome {
        stats,
        answers,
        arrivals: source.into_log(),
        forensics,
    }
}

/// Run a full serving session on `world`. Returns the replicated outcome
/// (identical on every rank, asserted) plus the world report for
/// virtual-time and traffic accounting.
pub fn run_serve<P, M>(
    world: &World,
    base: &Arc<PointSet<P>>,
    graph: &Arc<KnnGraph>,
    pool: &Arc<PointSet<P>>,
    metric: &M,
    params: &ServeParams,
) -> (ServeOutcome, WorldReport<()>)
where
    P: Point + QuantizeKey,
    M: BatchMetric<P>,
{
    let WorldReport {
        results,
        sim_secs,
        sim_ns,
        breakdown,
        phases,
        wall_secs,
        tags,
        total,
        matrix,
        faults,
    } = world.run(|comm| serve_on_comm(comm, base, graph, pool, metric, params));
    let n = results.len();
    let mut it = results.into_iter();
    let first = it.next().expect("world has at least one rank");
    for other in it {
        assert_eq!(other, first, "serving outcome diverged across ranks");
    }
    let report = WorldReport {
        results: vec![(); n],
        sim_secs,
        sim_ns,
        breakdown,
        phases,
        wall_secs,
        tags,
        total,
        matrix,
        faults,
    };
    (first, report)
}

/// Configuration of a namespaced (vector-DB) serving run, on top of the
/// usual [`ServeParams`].
#[derive(Debug, Clone, PartialEq)]
pub struct VdbServeConfig {
    /// Static predicate AND-ed into every query's filter (the
    /// `dnnd-serve --filter` flag). `None` = only workload-synthesized
    /// filters (the `filter:` clause), if any.
    pub filter: Option<Predicate>,
    /// Tombstone ratio at which a background compaction is armed; it then
    /// fires on a PRF-drawn slot boundary within the next 8 slots.
    pub compact_watermark: f64,
    /// NN-Descent refinement iterations per online ingest.
    pub refine_iters: usize,
}

impl Default for VdbServeConfig {
    fn default() -> VdbServeConfig {
        VdbServeConfig {
            filter: None,
            compact_watermark: 0.25,
            refine_iters: 1,
        }
    }
}

/// The namespaced product layer behind [`VdbHooks`]: one replicated
/// [`vdb::Collection`] per rank, mutated on slot boundaries by pure PRFs
/// of the serve seed, with a mask cache keyed on the canonical predicate
/// string (cleared on any state change).
struct VdbState {
    collection: Collection,
    filter: Option<Predicate>,
    compact_watermark: f64,
    refine_iters: usize,
    serve_seed: u64,
    spec: WorkloadSpec,
    ns_fnv: u64,
    pool: Arc<PointSet<Vec<f32>>>,
    mask_cache: BTreeMap<String, Arc<IdMask>>,
    /// Slot a pending compaction fires at, once armed.
    compact_at: Option<u64>,
    /// Compactions armed so far (streams the compaction-jitter PRF).
    arm_seq: u64,
    inserts: u64,
    deletes: u64,
    compactions: u64,
    filtered: u64,
    cache_suppressed: u64,
    sel_hist: BTreeMap<u64, u64>,
}

impl VdbState {
    /// The full predicate query `idx` carries: the static `--filter`
    /// terms AND-ed with the workload-synthesized `bucket` range, when the
    /// filter-traffic PRF selects this query. `None` = unfiltered.
    fn predicate_for(&self, idx: u64) -> Option<Predicate> {
        let lo = self.spec.filter_bucket_of(self.serve_seed, idx);
        if lo.is_none() && self.filter.is_none() {
            return None;
        }
        let mut terms: Vec<Term> = self
            .filter
            .iter()
            .flat_map(|p| p.terms().iter().cloned())
            .collect();
        if let Some(lo) = lo {
            let w = self
                .spec
                .filter
                .expect("bucket draw implies a filter clause")
                .width();
            terms.push(
                Term::range("bucket", lo as i64, (lo + w - 1) as i64)
                    .expect("'bucket' is a valid field"),
            );
        }
        Some(Predicate::new(terms).expect("at least one term"))
    }
}

impl VdbHooks<Vec<f32>> for VdbState {
    fn on_slot(&mut self, slot: u64) -> Option<(Arc<PointSet<Vec<f32>>>, Arc<KnnGraph>)> {
        let mut rewired = false;
        let m = self.spec.mutate.unwrap_or_default();
        if m.ins_every > 0 && slot > 0 && slot.is_multiple_of(m.ins_every) {
            // One online insert: the vector is drawn from the query pool
            // by a pure PRF, the metadata is the synthetic bucket record.
            let pick =
                (mix(self.serve_seed, SALT_MUTATE, slot, 0, 0) % self.pool.len() as u64) as PointId;
            let new_id = self.collection.stat().points;
            let rec = MetaRecord::bucket_record(self.serve_seed, new_id);
            self.collection
                .ingest(
                    vec![self.pool.point(pick).clone()],
                    vec![rec],
                    self.refine_iters,
                )
                .unwrap_or_else(|e| panic!("online ingest: {e}"));
            self.inserts += 1;
            rewired = true;
        }
        if m.del_every > 0 && slot > 0 && slot.is_multiple_of(m.del_every) {
            let n_live = self.collection.n_live() as u64;
            // Keep at least one live point: an empty collection serves
            // nothing and `k` would be out of range forever after.
            if n_live > 1 {
                let j = mix(self.serve_seed, SALT_MUTATE, slot, 1, 0) % n_live;
                let id = (0..self.collection.stat().points as PointId)
                    .filter(|&i| self.collection.is_live(i))
                    .nth(j as usize)
                    .expect("j-th live id exists");
                self.collection
                    .delete(&[id])
                    .unwrap_or_else(|e| panic!("online delete: {e}"));
                self.deletes += 1;
                self.mask_cache.clear();
            }
        }
        // Compaction: armed at the tombstone-ratio watermark, scheduled
        // onto a nearby slot boundary by a pure PRF of the serve seed.
        if self.compact_at.is_none() && self.collection.tombstone_ratio() >= self.compact_watermark
        {
            self.compact_at =
                Some(slot + 1 + mix(self.serve_seed, SALT_COMPACT, self.arm_seq, 0, 0) % 8);
            self.arm_seq += 1;
        }
        if self.compact_at == Some(slot) {
            self.compact_at = None;
            self.collection
                .compact()
                .unwrap_or_else(|e| panic!("compaction: {e}"));
            self.compactions += 1;
            rewired = true;
        }
        if rewired {
            self.mask_cache.clear();
            Some((
                Arc::new(self.collection.base.clone()),
                Arc::new(self.collection.graph.clone()),
            ))
        } else {
            None
        }
    }

    fn on_arrival(&mut self, idx: u64) {
        if self.predicate_for(idx).is_some() {
            self.filtered += 1;
        }
    }

    fn key_prefix(&mut self, idx: u64) -> Vec<i64> {
        let pred_fnv = self.predicate_for(idx).map(|p| p.fnv()).unwrap_or(0);
        vec![
            self.ns_fnv as i64,
            pred_fnv as i64,
            self.collection.epoch() as i64,
        ]
    }

    fn mask_for(&mut self, idx: u64) -> Option<Arc<IdMask>> {
        let pred = self.predicate_for(idx);
        if pred.is_none() && self.collection.n_live() as u64 == self.collection.stat().points {
            // Unfiltered query, nothing tombstoned: the legacy search
            // path is already exact.
            return None;
        }
        let cache_key = pred.as_ref().map(|p| p.to_string()).unwrap_or_default();
        let collection = &self.collection;
        let mask = self
            .mask_cache
            .entry(cache_key)
            .or_insert_with(|| Arc::new(collection.compile_mask(pred.as_ref())))
            .clone();
        if pred.is_some() {
            // Selectivity decile of the mask (predicate ∧ live), exact.
            let decile = if mask.is_empty() {
                0
            } else {
                (mask.allowed() as u64 * 10 / mask.len() as u64).min(9)
            };
            *self.sel_hist.entry(decile).or_insert(0) += 1;
        }
        Some(mask)
    }

    fn filter_cached(&mut self, ids: &mut Vec<PointId>) {
        let before = ids.len();
        ids.retain(|&id| self.collection.is_live(id));
        self.cache_suppressed += (before - ids.len()) as u64;
    }

    fn take_stats(&mut self) -> Option<VdbServeStats> {
        let s = self.collection.stat();
        Some(VdbServeStats {
            namespace: s.name,
            points: s.points,
            live: s.live,
            tombstones: s.tombstones,
            dead: s.dead,
            epoch: s.epoch,
            inserts: self.inserts,
            deletes: self.deletes,
            compactions: self.compactions,
            filtered: self.filtered,
            cache_suppressed: self.cache_suppressed,
            selectivity_hist: std::mem::take(&mut self.sel_hist).into_iter().collect(),
        })
    }
}

/// Run the namespaced serving loop on a live comm: [`serve_on_comm`]'s
/// semantics plus metadata-filtered search, online inserts/deletes, and
/// deterministic background compaction over `collection`. Every rank
/// passes its own (identical) replica of the collection and gets the
/// mutated replica back with the outcome.
///
/// `metric` must match `collection.metric()` — dispatch with
/// `vdb`'s metric-name convention before calling.
pub fn serve_vdb_on_comm<M>(
    comm: &Comm,
    collection: Collection,
    pool: &Arc<PointSet<Vec<f32>>>,
    metric: &M,
    params: &ServeParams,
    cfg: &VdbServeConfig,
) -> (ServeOutcome, Collection)
where
    M: BatchMetric<Vec<f32>>,
{
    assert!(
        cfg.compact_watermark > 0.0 && cfg.compact_watermark <= 1.0,
        "compact_watermark must be in (0, 1], got {}",
        cfg.compact_watermark
    );
    let base = Arc::new(collection.base.clone());
    let graph = Arc::new(collection.graph.clone());
    let ns_fnv = metall::checksum::fnv1a(collection.name().as_bytes());
    let mut hooks = VdbState {
        collection,
        filter: cfg.filter.clone(),
        compact_watermark: cfg.compact_watermark,
        refine_iters: cfg.refine_iters.max(1),
        serve_seed: params.serve_seed,
        spec: params.workload.clone(),
        ns_fnv,
        pool: Arc::clone(pool),
        mask_cache: BTreeMap::new(),
        compact_at: None,
        arm_seq: 0,
        inserts: 0,
        deletes: 0,
        compactions: 0,
        filtered: 0,
        cache_suppressed: 0,
        sel_hist: BTreeMap::new(),
    };
    let outcome = serve_loop(comm, &base, &graph, pool, metric, params, &mut hooks);
    (outcome, hooks.collection)
}

/// Run a full namespaced serving session on `world`: each rank opens its
/// own replica of namespace `namespace` from the store at `dir`, serves,
/// and rank 0 saves the mutated collection back. Returns the replicated
/// outcome (identical on every rank, asserted), the final collection
/// counters, and the world report.
pub fn run_serve_vdb<M>(
    world: &World,
    dir: &Path,
    namespace: &str,
    pool: &Arc<PointSet<Vec<f32>>>,
    metric: &M,
    params: &ServeParams,
    cfg: &VdbServeConfig,
) -> (ServeOutcome, CollectionStat, WorldReport<()>)
where
    M: BatchMetric<Vec<f32>>,
{
    let WorldReport {
        results,
        sim_secs,
        sim_ns,
        breakdown,
        phases,
        wall_secs,
        tags,
        total,
        matrix,
        faults,
    } = world.run(|comm| {
        let mut store = metall::Store::open(dir)
            .unwrap_or_else(|e| panic!("open store {}: {e}", dir.display()));
        let collection =
            Collection::open(&store, namespace).unwrap_or_else(|e| panic!("open namespace: {e}"));
        let (outcome, collection) = serve_vdb_on_comm(comm, collection, pool, metric, params, cfg);
        if comm.rank() == 0 {
            collection
                .save(&mut store)
                .unwrap_or_else(|e| panic!("save namespace: {e}"));
        }
        comm.barrier();
        (outcome, collection.stat())
    });
    let n = results.len();
    let mut it = results.into_iter();
    let first = it.next().expect("world has at least one rank");
    for other in it {
        assert_eq!(other, first, "vdb serving outcome diverged across ranks");
    }
    let report = WorldReport {
        results: vec![(); n],
        sim_secs,
        sim_ns,
        breakdown,
        phases,
        wall_secs,
        tags,
        total,
        matrix,
        faults,
    };
    (first.0, first.1, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_ladder_shapes() {
        let base = DistSearchParams::new(10).epsilon(0.2).entry_candidates(32);
        let l0 = degraded_search(&base, 0);
        assert_eq!(l0, base);
        let l1 = degraded_search(&base, 1);
        assert!((l1.epsilon - 0.1).abs() < 1e-6);
        assert_eq!(l1.entry_candidates, 24);
        let l2 = degraded_search(&base, 2);
        assert_eq!(l2.epsilon, 0.0);
        assert_eq!(l2.entry_candidates, 16);
        // Degradation never invalidates the parameters.
        l1.validate().unwrap();
        l2.validate().unwrap();
        // Entry beam never collapses to zero.
        let tiny = DistSearchParams::new(1).entry_candidates(1);
        assert_eq!(degraded_search(&tiny, 2).entry_candidates, 1);
    }

    #[test]
    fn dispatch_capacity_ladder() {
        assert_eq!(dispatch_capacity(8, 0), 8);
        assert_eq!(dispatch_capacity(8, 1), 12);
        assert_eq!(dispatch_capacity(8, 2), 16);
    }

    #[test]
    fn percentiles_on_exact_hist() {
        let stats = ServingStats {
            slot_ns: 1_000,
            latency_hist: vec![(1, 90), (2, 9), (10, 1)],
            ..ServingStats::default()
        };
        assert_eq!(stats.percentile_ns(0.50), 1_000);
        assert_eq!(stats.percentile_ns(0.95), 2_000);
        assert_eq!(stats.percentile_ns(0.99), 2_000);
        assert_eq!(stats.percentile_ns(1.0), 10_000);
        let mean = stats.mean_latency_ns();
        assert!((mean - (90.0 * 1_000.0 + 9.0 * 2_000.0 + 10_000.0) / 100.0).abs() < 1e-9);
        // Empty histogram reports zeros, not NaN.
        let empty = ServingStats::default();
        assert_eq!(empty.percentile_ns(0.99), 0);
        assert_eq!(empty.mean_latency_ns(), 0.0);
    }

    #[test]
    fn fingerprint_covers_the_histogram() {
        let a = ServingStats {
            latency_hist: vec![(1, 5)],
            ..ServingStats::default()
        };
        let b = ServingStats {
            latency_hist: vec![(1, 6)],
            ..ServingStats::default()
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn section_translation_is_faithful() {
        let stats = ServingStats {
            serve_seed: 7,
            slot_ns: 500,
            slots: 12,
            offered: 30,
            answered: 25,
            cache_hits: 3,
            shed_deadline: 1,
            shed_overload: 1,
            latency_hist: vec![(0, 3), (1, 20), (3, 5)],
            result_digest: 42,
            ..ServingStats::default()
        };
        let s = stats.to_section();
        assert_eq!(s.serve_seed, 7);
        assert_eq!(s.offered, 30);
        assert_eq!(s.p50_ns, stats.percentile_ns(0.5));
        assert_eq!(s.latency_hist, stats.latency_hist);
        assert_eq!(s.result_digest, 42);
        let mut report = RunReport::new("t");
        attach_serving(&mut report, &stats);
        assert_eq!(report.serving.as_ref().unwrap().offered, 30);
        // And it survives the JSON round trip.
        let back = RunReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(back.serving.unwrap(), s);
    }
}
