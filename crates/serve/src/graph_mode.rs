//! Per-deployment graph-mode selection: which optimized graph a serving
//! deployment traverses.
//!
//! A store can hold up to three graphs — the raw NN-Descent output
//! (`knng/`), the Section 4.5 reverse-prune pass (`opt/`), and the
//! RNN-Descent pass (`rnn/`, written by `dnnd-optimize --opt-mode rnn`).
//! [`GraphMode`] names the choice; [`GraphMode::resolve`] turns it into a
//! concrete store prefix given what the store actually contains. `Auto`
//! prefers the sparsest traversal-ready graph: `rnn` over `opt` over
//! `knng`.

/// Which graph a serving deployment loads from the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GraphMode {
    /// Prefer `rnn/`, then `opt/`, then fall back to `knng/`.
    #[default]
    Auto,
    /// The RNN-Descent-optimized graph (`rnn/`); error if absent.
    Rnn,
    /// The reverse-prune-optimized graph (`opt/`); error if absent.
    Opt,
    /// The raw NN-Descent output (`knng/`).
    Knng,
}

impl GraphMode {
    /// All accepted `--graph` flag values.
    pub const NAMES: &'static [&'static str] = &["auto", "rnn", "opt", "knng"];

    /// Parse a `--graph` flag value.
    pub fn from_name(s: &str) -> Option<GraphMode> {
        match s {
            "auto" => Some(GraphMode::Auto),
            "rnn" => Some(GraphMode::Rnn),
            "opt" => Some(GraphMode::Opt),
            "knng" => Some(GraphMode::Knng),
            _ => None,
        }
    }

    /// The flag value (inverse of [`Self::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            GraphMode::Auto => "auto",
            GraphMode::Rnn => "rnn",
            GraphMode::Opt => "opt",
            GraphMode::Knng => "knng",
        }
    }

    /// Resolve to a store prefix. `has` reports whether a prefix holds a
    /// saved graph (e.g. `store.contains("rnn/offsets")`). Explicit modes
    /// fail when their graph is missing instead of silently serving a
    /// different one.
    pub fn resolve(self, has: impl Fn(&str) -> bool) -> Result<&'static str, String> {
        let pick = |prefix: &'static str| -> Result<&'static str, String> {
            if has(prefix) {
                Ok(prefix)
            } else {
                Err(format!(
                    "store has no {prefix:?} graph (run dnnd-optimize{} first)",
                    if prefix == "rnn" {
                        " --opt-mode rnn"
                    } else {
                        ""
                    }
                ))
            }
        };
        match self {
            GraphMode::Auto => Ok(if has("rnn") {
                "rnn"
            } else if has("opt") {
                "opt"
            } else {
                "knng"
            }),
            GraphMode::Rnn => pick("rnn"),
            GraphMode::Opt => pick("opt"),
            GraphMode::Knng => pick("knng"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trip() {
        for &n in GraphMode::NAMES {
            assert_eq!(GraphMode::from_name(n).unwrap().name(), n);
        }
        assert_eq!(GraphMode::from_name("hnsw"), None);
    }

    #[test]
    fn auto_prefers_rnn_then_opt_then_knng() {
        let all = |_: &str| true;
        assert_eq!(GraphMode::Auto.resolve(all).unwrap(), "rnn");
        let no_rnn = |p: &str| p != "rnn";
        assert_eq!(GraphMode::Auto.resolve(no_rnn).unwrap(), "opt");
        let only_knng = |p: &str| p == "knng";
        assert_eq!(GraphMode::Auto.resolve(only_knng).unwrap(), "knng");
        // Even an empty store resolves auto to knng — the load itself will
        // report the missing graph.
        assert_eq!(GraphMode::Auto.resolve(|_| false).unwrap(), "knng");
    }

    #[test]
    fn explicit_modes_fail_when_absent() {
        let only_knng = |p: &str| p == "knng";
        assert_eq!(GraphMode::Knng.resolve(only_knng).unwrap(), "knng");
        let err = GraphMode::Rnn.resolve(only_knng).unwrap_err();
        assert!(err.contains("--opt-mode rnn"), "{err}");
        assert!(GraphMode::Opt.resolve(only_knng).is_err());
    }
}
