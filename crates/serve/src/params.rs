//! Validated serving parameters.
//!
//! Everything that shapes a serving run — the open-loop workload, the
//! micro-batching policy, the admission-control ladder, and the result
//! cache — lives in one [`ServeParams`] value, so one `--serve-seed` plus
//! one parameter set replays a run exactly (see the determinism contract
//! in the crate docs).

use crate::workload::{
    ArrivalProcess, BurstWindow, Diurnal, FilterTraffic, MutateTraffic, PoolDist, TenantClass,
    WorkloadSpec,
};
use dnnd::DistSearchParams;
use std::fmt;

/// Parameters of one online serving run. Construct with [`ServeParams::new`]
/// and the builder methods (each validates its argument), or start from
/// [`Default`] and adjust.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeParams {
    /// Search quality at degrade level 0 (`l`, `epsilon`,
    /// `entry_candidates`, search seed).
    pub search: DistSearchParams,
    /// Seed of the whole serving run: arrivals, hot-set picks, and every
    /// admission decision are a pure function of it.
    pub serve_seed: u64,
    /// Virtual duration of one serving slot, nanoseconds. The frontend
    /// wakes once per slot; latencies are measured in slots.
    pub slot_ns: u64,
    /// Offered load of the Poisson arrival process, queries per second of
    /// virtual time.
    pub offered_qps: f64,
    /// Total queries the workload generator emits.
    pub n_arrivals: usize,
    /// Probability that an arrival draws from the hot pool (drives cache
    /// hits); in `[0, 1]`.
    pub hot_fraction: f64,
    /// Size of the hot pool (first `hot_pool` queries of the pool set).
    pub hot_pool: usize,
    /// Micro-batch flush size B: the queue dispatches when it holds at
    /// least B queries...
    pub batch: usize,
    /// ...or when the oldest queued query is this many slots old,
    /// whichever happens first.
    pub flush_age_slots: u64,
    /// Deadline budget: a query still queued after this many slots is
    /// shed (too stale to answer within its SLO).
    pub deadline_slots: u64,
    /// Queue depth at which search degrades (level 1; level 2 at the
    /// midpoint between this and `shed_watermark`).
    pub degrade_watermark: usize,
    /// Queue depth above which the newest queries are dropped outright.
    pub shed_watermark: usize,
    /// Result-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Quantization step for cache keys (coordinates are bucketed by this
    /// step; queries in the same bucket share a cache entry).
    pub quant_step: f32,
    /// Width, in slots, of each tail-sampling window of the forensics
    /// collector (must be >= 1).
    pub forensics_window_slots: u64,
    /// Slowest queries retained per forensics window (0 keeps only the
    /// unconditional shed/degraded/deadline-miss exemplars).
    pub forensics_slow_n: u64,
    /// The composed workload scenario (arrival process, rate modulators,
    /// pool distribution, tenant classes). The default spec reproduces
    /// the pre-DSL behavior bit-for-bit; parse richer scenarios from a
    /// `--workload` string (grammar below).
    pub workload: WorkloadSpec,
}

impl ServeParams {
    /// Serving defaults around a `DistSearchParams::new(l)` search.
    pub fn new(l: usize) -> Self {
        ServeParams {
            search: DistSearchParams::new(l).epsilon(0.1).entry_candidates(24),
            serve_seed: 0x5E27E,
            slot_ns: 1_000_000, // 1 ms slots
            offered_qps: 2_000.0,
            n_arrivals: 200,
            hot_fraction: 0.3,
            hot_pool: 8,
            batch: 8,
            flush_age_slots: 2,
            deadline_slots: 8,
            degrade_watermark: 24,
            shed_watermark: 64,
            cache_capacity: 32,
            quant_step: 1e-3,
            forensics_window_slots: 8,
            forensics_slow_n: 4,
            workload: WorkloadSpec::default(),
        }
    }

    /// Set the workload scenario (must validate).
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        spec.validate()
            .unwrap_or_else(|e| panic!("ServeParams: invalid workload: {e}"));
        self.workload = spec;
        self
    }

    /// Parse and set the workload scenario from a `--workload` spec
    /// string (grammar in the module docs of [`crate::workload`] and the
    /// [`std::str::FromStr`] impl below).
    pub fn workload_str(mut self, spec: &str) -> Self {
        self.workload = spec
            .parse()
            .unwrap_or_else(|e| panic!("ServeParams: invalid workload spec: {e}"));
        self
    }

    /// Set the forensics tail sampler: window width in slots (must be at
    /// least 1) and slowest-per-window retention count (0 disables the
    /// slow-path samples, keeping only unconditional exemplars).
    pub fn forensics(mut self, window_slots: u64, slow_n: u64) -> Self {
        assert!(
            window_slots >= 1,
            "ServeParams: forensics_window_slots must be >= 1"
        );
        self.forensics_window_slots = window_slots;
        self.forensics_slow_n = slow_n;
        self
    }

    /// Set the serve seed.
    pub fn serve_seed(mut self, s: u64) -> Self {
        self.serve_seed = s;
        self
    }

    /// Set the slot duration (must be positive).
    pub fn slot_ns(mut self, ns: u64) -> Self {
        assert!(ns > 0, "ServeParams: slot_ns must be positive");
        self.slot_ns = ns;
        self
    }

    /// Set the offered load (must be finite and positive).
    pub fn offered_qps(mut self, qps: f64) -> Self {
        assert!(
            qps.is_finite() && qps > 0.0,
            "ServeParams: offered_qps must be finite and > 0 (got {qps})"
        );
        self.offered_qps = qps;
        self
    }

    /// Set the workload length (must be >= 1).
    pub fn n_arrivals(mut self, n: usize) -> Self {
        assert!(n >= 1, "ServeParams: n_arrivals must be >= 1");
        self.n_arrivals = n;
        self
    }

    /// Set the hot-pool skew (fraction in `[0, 1]`, pool size >= 1).
    pub fn hot_set(mut self, fraction: f64, pool: usize) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "ServeParams: hot_fraction must be in [0, 1] (got {fraction})"
        );
        assert!(pool >= 1, "ServeParams: hot_pool must be >= 1");
        self.hot_fraction = fraction;
        self.hot_pool = pool;
        self
    }

    /// Set the micro-batch size B (must be >= 1).
    pub fn batch(mut self, b: usize) -> Self {
        assert!(b >= 1, "ServeParams: batch must be >= 1");
        self.batch = b;
        self
    }

    /// Set the age-based flush deadline in slots (must be >= 1).
    pub fn flush_age_slots(mut self, s: u64) -> Self {
        assert!(s >= 1, "ServeParams: flush_age_slots must be >= 1");
        self.flush_age_slots = s;
        self
    }

    /// Set the per-query deadline budget in slots (must be >= 1).
    pub fn deadline_slots(mut self, s: u64) -> Self {
        assert!(s >= 1, "ServeParams: deadline_slots must be >= 1");
        self.deadline_slots = s;
        self
    }

    /// Set the degrade/shed queue-depth watermarks
    /// (`0 < degrade <= shed`).
    pub fn watermarks(mut self, degrade: usize, shed: usize) -> Self {
        assert!(
            degrade >= 1 && shed >= degrade,
            "ServeParams: watermarks must satisfy 1 <= degrade <= shed \
             (got degrade {degrade}, shed {shed})"
        );
        self.degrade_watermark = degrade;
        self.shed_watermark = shed;
        self
    }

    /// Set the cache capacity (0 disables) and key quantization step
    /// (must be finite and positive).
    pub fn cache(mut self, capacity: usize, quant_step: f32) -> Self {
        assert!(
            quant_step.is_finite() && quant_step > 0.0,
            "ServeParams: quant_step must be finite and > 0 (got {quant_step})"
        );
        self.cache_capacity = capacity;
        self.quant_step = quant_step;
        self
    }

    /// Check every invariant the builders enforce (for parameter sets
    /// filled directly, e.g. from CLI flags).
    pub fn validate(&self) -> Result<(), String> {
        self.search.validate()?;
        if self.slot_ns == 0 {
            return Err("slot_ns must be positive".into());
        }
        if !self.offered_qps.is_finite() || self.offered_qps <= 0.0 {
            return Err(format!(
                "offered_qps must be finite and > 0 (got {})",
                self.offered_qps
            ));
        }
        if self.n_arrivals < 1 {
            return Err("n_arrivals must be >= 1".into());
        }
        if !self.hot_fraction.is_finite() || !(0.0..=1.0).contains(&self.hot_fraction) {
            return Err(format!(
                "hot_fraction must be in [0, 1] (got {})",
                self.hot_fraction
            ));
        }
        if self.hot_pool < 1 {
            return Err("hot_pool must be >= 1".into());
        }
        if self.batch < 1 {
            return Err("batch must be >= 1".into());
        }
        if self.flush_age_slots < 1 {
            return Err("flush_age_slots must be >= 1".into());
        }
        if self.deadline_slots < 1 {
            return Err("deadline_slots must be >= 1".into());
        }
        if self.degrade_watermark < 1 || self.shed_watermark < self.degrade_watermark {
            return Err(format!(
                "watermarks must satisfy 1 <= degrade <= shed (got degrade {}, shed {})",
                self.degrade_watermark, self.shed_watermark
            ));
        }
        if !self.quant_step.is_finite() || self.quant_step <= 0.0 {
            return Err(format!(
                "quant_step must be finite and > 0 (got {})",
                self.quant_step
            ));
        }
        if self.forensics_window_slots < 1 {
            return Err("forensics_window_slots must be >= 1".into());
        }
        self.workload.validate()?;
        Ok(())
    }
}

impl Default for ServeParams {
    /// `l = 10` search under the standard serving shape.
    fn default() -> Self {
        ServeParams::new(10)
    }
}

// --- the `--workload` spec-string grammar ---
//
//   spec    := clause (';' clause)*
//   clause  := 'open'                          open-loop Poisson (default)
//            | 'closed' ':' kv-list            n=<int>, think=<dur>
//            | 'pool'                          legacy hot/cold mix (default)
//            | 'zipf'   ':' kv-list            s=<float>
//            | 'sine'   ':' kv-list            period=<dur>, amp=<float>
//            | 'burst'  ':' kv-list            at=<dur>, x=<float>,
//                                              dur=<dur> (default 500ms)
//            | 'filter' ':' kv-list            pct=<1..100>, sel=<(0,1]>
//                                              (vdb mode: pct% of queries
//                                              carry a predicate of the
//                                              given selectivity)
//            | 'mutate' ':' kv-list            ins=<int>, del=<int>
//                                              (vdb mode: one insert /
//                                              delete every N slots;
//                                              0 or absent disables)
//            | 'tenants' '=' tenant (',' tenant)*
//   tenant  := name ':' <int> '%'?             shares sum to 100
//   dur     := <int> ('ns'|'us'|'ms'|'s')?     bare integers are ns
//
// e.g. `closed:n=64,think=5ms;zipf:s=1.1;burst:at=2s,x=8;tenants=gold:50%,free:50%`
// or   `filter:pct=30,sel=0.2;mutate:ins=40,del=25` for a vdb run

/// Parse a duration like `5ms`, `2s`, `250us`, `100` (bare = ns) to ns.
fn parse_dur_ns(v: &str) -> Result<u64, String> {
    let v = v.trim();
    let (num, unit) = if let Some(n) = v.strip_suffix("ns") {
        (n, 1u64)
    } else if let Some(n) = v.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = v.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        (v, 1)
    };
    let base: u64 = num
        .trim()
        .parse()
        .map_err(|_| format!("invalid duration {v:?} (want e.g. 5ms, 2s, 250us, 100ns)"))?;
    base.checked_mul(unit)
        .ok_or_else(|| format!("duration {v:?} overflows u64 nanoseconds"))
}

/// Render `ns` with the largest unit that divides it exactly, so
/// `Display` → `FromStr` round-trips bit-for-bit.
fn fmt_dur_ns(ns: u64) -> String {
    if ns > 0 && ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns > 0 && ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns > 0 && ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Split a `k=v,k=v` tail, rejecting malformed or unknown keys.
fn parse_kvs<'a>(
    clause: &str,
    tail: &'a str,
    keys: &[&str],
) -> Result<Vec<(&'a str, &'a str)>, String> {
    let mut out = Vec::new();
    for kv in tail.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("{clause}: expected key=value, got {kv:?}"))?;
        let (k, v) = (k.trim(), v.trim());
        if !keys.contains(&k) {
            return Err(format!("{clause}: unknown key {k:?} (valid: {keys:?})"));
        }
        if out.iter().any(|&(seen, _)| seen == k) {
            return Err(format!("{clause}: duplicate key {k:?}"));
        }
        out.push((k, v));
    }
    Ok(out)
}

fn kv_get<'a>(kvs: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    kvs.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
}

fn parse_f64(clause: &str, key: &str, v: &str) -> Result<f64, String> {
    v.parse()
        .map_err(|_| format!("{clause}: {key} must be a number (got {v:?})"))
}

impl std::str::FromStr for WorkloadSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut spec = WorkloadSpec::default();
        let (mut saw_arrival, mut saw_pool, mut saw_sine, mut saw_tenants) =
            (false, false, false, false);
        let (mut saw_filter, mut saw_mutate) = (false, false);
        for clause in s.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(rest) = clause.strip_prefix("tenants=") {
                if saw_tenants {
                    return Err("duplicate tenants clause".into());
                }
                saw_tenants = true;
                for t in rest.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                    let (name, share) = t
                        .split_once(':')
                        .ok_or_else(|| format!("tenants: expected name:share%, got {t:?}"))?;
                    let share = share.trim().trim_end_matches('%');
                    let share_pct: u64 = share.parse().map_err(|_| {
                        format!("tenants: share for {name:?} must be an integer percent")
                    })?;
                    spec.tenants.push(TenantClass {
                        name: name.trim().to_string(),
                        share_pct,
                    });
                }
                if spec.tenants.is_empty() {
                    return Err("tenants clause declares no classes".into());
                }
                continue;
            }
            let (head, tail) = match clause.split_once(':') {
                Some((h, t)) => (h.trim(), t),
                None => (clause, ""),
            };
            match head {
                "open" => {
                    if saw_arrival {
                        return Err("duplicate arrival clause (open/closed)".into());
                    }
                    saw_arrival = true;
                    parse_kvs("open", tail, &[])?;
                    spec.arrival = ArrivalProcess::Open;
                }
                "closed" => {
                    if saw_arrival {
                        return Err("duplicate arrival clause (open/closed)".into());
                    }
                    saw_arrival = true;
                    let kvs = parse_kvs("closed", tail, &["n", "think"])?;
                    let clients = kv_get(&kvs, "n")
                        .ok_or("closed: missing n=<clients>")?
                        .parse::<u64>()
                        .map_err(|_| "closed: n must be an integer".to_string())?;
                    let think_ns = match kv_get(&kvs, "think") {
                        Some(v) => parse_dur_ns(v)?,
                        None => 0,
                    };
                    spec.arrival = ArrivalProcess::Closed { clients, think_ns };
                }
                "pool" => {
                    if saw_pool {
                        return Err("duplicate pool clause (pool/zipf)".into());
                    }
                    saw_pool = true;
                    parse_kvs("pool", tail, &[])?;
                    spec.pool = PoolDist::HotCold;
                }
                "zipf" => {
                    if saw_pool {
                        return Err("duplicate pool clause (pool/zipf)".into());
                    }
                    saw_pool = true;
                    let kvs = parse_kvs("zipf", tail, &["s"])?;
                    let s = parse_f64(
                        "zipf",
                        "s",
                        kv_get(&kvs, "s").ok_or("zipf: missing s=<exponent>")?,
                    )?;
                    spec.pool = PoolDist::Zipf { s };
                }
                "sine" => {
                    if saw_sine {
                        return Err("duplicate sine clause".into());
                    }
                    saw_sine = true;
                    let kvs = parse_kvs("sine", tail, &["period", "amp"])?;
                    let period_ns =
                        parse_dur_ns(kv_get(&kvs, "period").ok_or("sine: missing period=<dur>")?)?;
                    let amp = parse_f64(
                        "sine",
                        "amp",
                        kv_get(&kvs, "amp").ok_or("sine: missing amp=<0..0.9>")?,
                    )?;
                    spec.diurnal = Some(Diurnal { period_ns, amp });
                }
                "burst" => {
                    let kvs = parse_kvs("burst", tail, &["at", "x", "dur"])?;
                    let at_ns = parse_dur_ns(kv_get(&kvs, "at").ok_or("burst: missing at=<dur>")?)?;
                    let x = parse_f64(
                        "burst",
                        "x",
                        kv_get(&kvs, "x").ok_or("burst: missing x=<multiplier>")?,
                    )?;
                    let dur_ns = match kv_get(&kvs, "dur") {
                        Some(v) => parse_dur_ns(v)?,
                        None => 500_000_000, // 500 ms default window
                    };
                    spec.bursts.push(BurstWindow { at_ns, dur_ns, x });
                }
                "filter" => {
                    if saw_filter {
                        return Err("duplicate filter clause".into());
                    }
                    saw_filter = true;
                    let kvs = parse_kvs("filter", tail, &["pct", "sel"])?;
                    let pct = kv_get(&kvs, "pct")
                        .ok_or("filter: missing pct=<1..100>")?
                        .parse::<u64>()
                        .map_err(|_| "filter: pct must be an integer".to_string())?;
                    let sel = parse_f64(
                        "filter",
                        "sel",
                        kv_get(&kvs, "sel").ok_or("filter: missing sel=<(0,1]>")?,
                    )?;
                    spec.filter = Some(FilterTraffic { pct, sel });
                }
                "mutate" => {
                    if saw_mutate {
                        return Err("duplicate mutate clause".into());
                    }
                    saw_mutate = true;
                    let kvs = parse_kvs("mutate", tail, &["ins", "del"])?;
                    let parse_every = |key: &str| -> Result<u64, String> {
                        match kv_get(&kvs, key) {
                            Some(v) => v
                                .parse::<u64>()
                                .map_err(|_| format!("mutate: {key} must be an integer")),
                            None => Ok(0),
                        }
                    };
                    spec.mutate = Some(MutateTraffic {
                        ins_every: parse_every("ins")?,
                        del_every: parse_every("del")?,
                    });
                }
                other => {
                    return Err(format!(
                        "unknown workload clause {other:?} (valid: open, closed, \
                         pool, zipf, sine, burst, filter, mutate, tenants)"
                    ));
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

impl fmt::Display for WorkloadSpec {
    /// Canonical spec string: `parse(format!("{spec}")) == spec` exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.arrival {
            ArrivalProcess::Open => write!(f, "open")?,
            ArrivalProcess::Closed { clients, think_ns } => {
                write!(f, "closed:n={clients},think={}", fmt_dur_ns(think_ns))?
            }
        }
        if let PoolDist::Zipf { s } = self.pool {
            write!(f, ";zipf:s={s}")?;
        }
        if let Some(d) = self.diurnal {
            write!(f, ";sine:period={},amp={}", fmt_dur_ns(d.period_ns), d.amp)?;
        }
        for b in &self.bursts {
            write!(
                f,
                ";burst:at={},x={},dur={}",
                fmt_dur_ns(b.at_ns),
                b.x,
                fmt_dur_ns(b.dur_ns)
            )?;
        }
        if let Some(ft) = self.filter {
            write!(f, ";filter:pct={},sel={}", ft.pct, ft.sel)?;
        }
        if let Some(m) = self.mutate {
            write!(f, ";mutate:")?;
            match (m.ins_every, m.del_every) {
                (i, 0) => write!(f, "ins={i}")?,
                (0, d) => write!(f, "del={d}")?,
                (i, d) => write!(f, "ins={i},del={d}")?,
            }
        }
        if !self.tenants.is_empty() {
            write!(f, ";tenants=")?;
            for (i, t) in self.tenants.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}:{}%", t.name, t.share_pct)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        ServeParams::default().validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "slot_ns")]
    fn zero_slot_is_rejected() {
        let _ = ServeParams::new(10).slot_ns(0);
    }

    #[test]
    #[should_panic(expected = "offered_qps")]
    fn nan_qps_is_rejected() {
        let _ = ServeParams::new(10).offered_qps(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "hot_fraction")]
    fn out_of_range_hot_fraction_is_rejected() {
        let _ = ServeParams::new(10).hot_set(1.5, 4);
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn inverted_watermarks_are_rejected() {
        let _ = ServeParams::new(10).watermarks(64, 8);
    }

    #[test]
    #[should_panic(expected = "quant_step")]
    fn negative_quant_step_is_rejected() {
        let _ = ServeParams::new(10).cache(8, -1.0);
    }

    #[test]
    #[should_panic(expected = "forensics_window_slots")]
    fn zero_forensics_window_is_rejected() {
        let _ = ServeParams::new(10).forensics(0, 4);
    }

    #[test]
    fn forensics_builder_sets_both_knobs() {
        let p = ServeParams::new(10).forensics(16, 0);
        assert_eq!(p.forensics_window_slots, 16);
        assert_eq!(p.forensics_slow_n, 0);
        p.validate().unwrap();
        let bad = ServeParams {
            forensics_window_slots: 0,
            ..ServeParams::default()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .contains("forensics_window_slots"));
    }

    #[test]
    fn workload_spec_parses_the_issue_example() {
        let spec: WorkloadSpec =
            "closed:n=64,think=5ms;zipf:s=1.1;burst:at=2s,x=8;tenants=gold:50%,free:50%"
                .parse()
                .unwrap();
        assert_eq!(
            spec.arrival,
            ArrivalProcess::Closed {
                clients: 64,
                think_ns: 5_000_000
            }
        );
        assert_eq!(spec.pool, PoolDist::Zipf { s: 1.1 });
        assert_eq!(
            spec.bursts,
            vec![BurstWindow {
                at_ns: 2_000_000_000,
                dur_ns: 500_000_000,
                x: 8.0
            }]
        );
        assert_eq!(spec.tenants.len(), 2);
        assert_eq!(spec.tenants[0].name, "gold");
        assert_eq!(spec.tenants[1].share_pct, 50);
        // ...and round-trips through the canonical Display form.
        let rt: WorkloadSpec = spec.to_string().parse().unwrap();
        assert_eq!(rt, spec);
    }

    #[test]
    fn workload_spec_defaults_and_empty_string() {
        let spec: WorkloadSpec = "".parse().unwrap();
        assert_eq!(spec, WorkloadSpec::default());
        let spec: WorkloadSpec = "open".parse().unwrap();
        assert_eq!(spec, WorkloadSpec::default());
        assert_eq!(spec.to_string(), "open");
    }

    #[test]
    fn workload_spec_rejects_malformed_strings() {
        for (s, want) in [
            ("bogus", "unknown workload clause"),
            ("closed:think=5ms", "missing n"),
            ("closed:n=0", "clients must be >= 1"),
            ("zipf:s=9", "[0, 8]"),
            ("zipf:s=nope", "must be a number"),
            ("sine:period=1s,amp=2", "[0, 0.9]"),
            ("sine:amp=0.5", "missing period"),
            ("burst:at=1s,x=8,dur=0", "zero width"),
            ("burst:at=1s,x=128", "[1, 64]"),
            ("burst:x=8,at=1q", "invalid duration"),
            ("tenants=gold:60%,free:50%", "sum to 100"),
            ("tenants=gold:50%,gold:50%", "duplicate tenant"),
            ("tenants=:100%", "tenant name"),
            ("open;closed:n=4", "duplicate arrival"),
            ("zipf:s=1;pool", "duplicate pool"),
            ("burst:at=1s,x=8,x=9", "duplicate key"),
            ("sine:period=1s,amp=0.5,phase=3", "unknown key"),
            ("filter:sel=0.2", "missing pct"),
            ("filter:pct=30", "missing sel"),
            ("filter:pct=0,sel=0.5", "[1, 100]"),
            ("filter:pct=30,sel=1.5", "(0, 1]"),
            (
                "filter:pct=30,sel=0.2;filter:pct=10,sel=0.5",
                "duplicate filter",
            ),
            ("mutate:", "no mutations"),
            ("mutate:ins=nope", "must be an integer"),
            ("mutate:ins=4;mutate:del=2", "duplicate mutate"),
            ("mutate:ins=4,freq=2", "unknown key"),
        ] {
            let err = s.parse::<WorkloadSpec>().unwrap_err();
            assert!(
                err.contains(want),
                "spec {s:?}: error {err:?} lacks {want:?}"
            );
        }
    }

    #[test]
    fn filter_and_mutate_clauses_round_trip() {
        let spec: WorkloadSpec = "filter:pct=30,sel=0.2;mutate:ins=40,del=25"
            .parse()
            .unwrap();
        assert_eq!(spec.filter, Some(FilterTraffic { pct: 30, sel: 0.2 }));
        assert_eq!(
            spec.mutate,
            Some(MutateTraffic {
                ins_every: 40,
                del_every: 25
            })
        );
        let rt: WorkloadSpec = spec.to_string().parse().unwrap();
        assert_eq!(rt, spec);
        // Single-sided mutate clauses round-trip without the zero key.
        for s in ["mutate:ins=8", "mutate:del=5"] {
            let spec: WorkloadSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), format!("open;{s}"));
            let rt: WorkloadSpec = spec.to_string().parse().unwrap();
            assert_eq!(rt, spec);
        }
    }

    #[test]
    fn workload_durations_round_trip_at_every_unit() {
        for (s, ns) in [
            ("7ns", 7),
            ("250us", 250_000),
            ("5ms", 5_000_000),
            ("2s", 2_000_000_000),
            ("42", 42),
        ] {
            let spec: WorkloadSpec = format!("closed:n=1,think={s}").parse().unwrap();
            assert_eq!(
                spec.arrival,
                ArrivalProcess::Closed {
                    clients: 1,
                    think_ns: ns
                }
            );
            let rt: WorkloadSpec = spec.to_string().parse().unwrap();
            assert_eq!(rt, spec);
        }
    }

    #[test]
    fn params_validate_covers_the_workload() {
        let p = ServeParams {
            workload: WorkloadSpec {
                bursts: vec![BurstWindow {
                    at_ns: 0,
                    dur_ns: 0,
                    x: 8.0,
                }],
                ..WorkloadSpec::default()
            },
            ..ServeParams::default()
        };
        assert!(p.validate().unwrap_err().contains("zero width"));
        let p = ServeParams::default().workload_str("zipf:s=1.1;tenants=gold:50,free:50");
        p.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn workload_str_builder_rejects_bad_specs() {
        let _ = ServeParams::default().workload_str("burst:at=1s,x=999");
    }

    #[test]
    fn validate_catches_directly_filled_fields() {
        let p = ServeParams {
            deadline_slots: 0,
            ..ServeParams::default()
        };
        assert!(p.validate().unwrap_err().contains("deadline_slots"));
        let mut p = ServeParams::default();
        p.search.epsilon = f32::NAN;
        assert!(p.validate().is_err());
    }
}
