//! Validated serving parameters.
//!
//! Everything that shapes a serving run — the open-loop workload, the
//! micro-batching policy, the admission-control ladder, and the result
//! cache — lives in one [`ServeParams`] value, so one `--serve-seed` plus
//! one parameter set replays a run exactly (see the determinism contract
//! in the crate docs).

use dnnd::DistSearchParams;

/// Parameters of one online serving run. Construct with [`ServeParams::new`]
/// and the builder methods (each validates its argument), or start from
/// [`Default`] and adjust.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeParams {
    /// Search quality at degrade level 0 (`l`, `epsilon`,
    /// `entry_candidates`, search seed).
    pub search: DistSearchParams,
    /// Seed of the whole serving run: arrivals, hot-set picks, and every
    /// admission decision are a pure function of it.
    pub serve_seed: u64,
    /// Virtual duration of one serving slot, nanoseconds. The frontend
    /// wakes once per slot; latencies are measured in slots.
    pub slot_ns: u64,
    /// Offered load of the Poisson arrival process, queries per second of
    /// virtual time.
    pub offered_qps: f64,
    /// Total queries the workload generator emits.
    pub n_arrivals: usize,
    /// Probability that an arrival draws from the hot pool (drives cache
    /// hits); in `[0, 1]`.
    pub hot_fraction: f64,
    /// Size of the hot pool (first `hot_pool` queries of the pool set).
    pub hot_pool: usize,
    /// Micro-batch flush size B: the queue dispatches when it holds at
    /// least B queries...
    pub batch: usize,
    /// ...or when the oldest queued query is this many slots old,
    /// whichever happens first.
    pub flush_age_slots: u64,
    /// Deadline budget: a query still queued after this many slots is
    /// shed (too stale to answer within its SLO).
    pub deadline_slots: u64,
    /// Queue depth at which search degrades (level 1; level 2 at the
    /// midpoint between this and `shed_watermark`).
    pub degrade_watermark: usize,
    /// Queue depth above which the newest queries are dropped outright.
    pub shed_watermark: usize,
    /// Result-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Quantization step for cache keys (coordinates are bucketed by this
    /// step; queries in the same bucket share a cache entry).
    pub quant_step: f32,
    /// Width, in slots, of each tail-sampling window of the forensics
    /// collector (must be >= 1).
    pub forensics_window_slots: u64,
    /// Slowest queries retained per forensics window (0 keeps only the
    /// unconditional shed/degraded/deadline-miss exemplars).
    pub forensics_slow_n: u64,
}

impl ServeParams {
    /// Serving defaults around a `DistSearchParams::new(l)` search.
    pub fn new(l: usize) -> Self {
        ServeParams {
            search: DistSearchParams::new(l).epsilon(0.1).entry_candidates(24),
            serve_seed: 0x5E27E,
            slot_ns: 1_000_000, // 1 ms slots
            offered_qps: 2_000.0,
            n_arrivals: 200,
            hot_fraction: 0.3,
            hot_pool: 8,
            batch: 8,
            flush_age_slots: 2,
            deadline_slots: 8,
            degrade_watermark: 24,
            shed_watermark: 64,
            cache_capacity: 32,
            quant_step: 1e-3,
            forensics_window_slots: 8,
            forensics_slow_n: 4,
        }
    }

    /// Set the forensics tail sampler: window width in slots (must be at
    /// least 1) and slowest-per-window retention count (0 disables the
    /// slow-path samples, keeping only unconditional exemplars).
    pub fn forensics(mut self, window_slots: u64, slow_n: u64) -> Self {
        assert!(
            window_slots >= 1,
            "ServeParams: forensics_window_slots must be >= 1"
        );
        self.forensics_window_slots = window_slots;
        self.forensics_slow_n = slow_n;
        self
    }

    /// Set the serve seed.
    pub fn serve_seed(mut self, s: u64) -> Self {
        self.serve_seed = s;
        self
    }

    /// Set the slot duration (must be positive).
    pub fn slot_ns(mut self, ns: u64) -> Self {
        assert!(ns > 0, "ServeParams: slot_ns must be positive");
        self.slot_ns = ns;
        self
    }

    /// Set the offered load (must be finite and positive).
    pub fn offered_qps(mut self, qps: f64) -> Self {
        assert!(
            qps.is_finite() && qps > 0.0,
            "ServeParams: offered_qps must be finite and > 0 (got {qps})"
        );
        self.offered_qps = qps;
        self
    }

    /// Set the workload length (must be >= 1).
    pub fn n_arrivals(mut self, n: usize) -> Self {
        assert!(n >= 1, "ServeParams: n_arrivals must be >= 1");
        self.n_arrivals = n;
        self
    }

    /// Set the hot-pool skew (fraction in `[0, 1]`, pool size >= 1).
    pub fn hot_set(mut self, fraction: f64, pool: usize) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "ServeParams: hot_fraction must be in [0, 1] (got {fraction})"
        );
        assert!(pool >= 1, "ServeParams: hot_pool must be >= 1");
        self.hot_fraction = fraction;
        self.hot_pool = pool;
        self
    }

    /// Set the micro-batch size B (must be >= 1).
    pub fn batch(mut self, b: usize) -> Self {
        assert!(b >= 1, "ServeParams: batch must be >= 1");
        self.batch = b;
        self
    }

    /// Set the age-based flush deadline in slots (must be >= 1).
    pub fn flush_age_slots(mut self, s: u64) -> Self {
        assert!(s >= 1, "ServeParams: flush_age_slots must be >= 1");
        self.flush_age_slots = s;
        self
    }

    /// Set the per-query deadline budget in slots (must be >= 1).
    pub fn deadline_slots(mut self, s: u64) -> Self {
        assert!(s >= 1, "ServeParams: deadline_slots must be >= 1");
        self.deadline_slots = s;
        self
    }

    /// Set the degrade/shed queue-depth watermarks
    /// (`0 < degrade <= shed`).
    pub fn watermarks(mut self, degrade: usize, shed: usize) -> Self {
        assert!(
            degrade >= 1 && shed >= degrade,
            "ServeParams: watermarks must satisfy 1 <= degrade <= shed \
             (got degrade {degrade}, shed {shed})"
        );
        self.degrade_watermark = degrade;
        self.shed_watermark = shed;
        self
    }

    /// Set the cache capacity (0 disables) and key quantization step
    /// (must be finite and positive).
    pub fn cache(mut self, capacity: usize, quant_step: f32) -> Self {
        assert!(
            quant_step.is_finite() && quant_step > 0.0,
            "ServeParams: quant_step must be finite and > 0 (got {quant_step})"
        );
        self.cache_capacity = capacity;
        self.quant_step = quant_step;
        self
    }

    /// Check every invariant the builders enforce (for parameter sets
    /// filled directly, e.g. from CLI flags).
    pub fn validate(&self) -> Result<(), String> {
        self.search.validate()?;
        if self.slot_ns == 0 {
            return Err("slot_ns must be positive".into());
        }
        if !self.offered_qps.is_finite() || self.offered_qps <= 0.0 {
            return Err(format!(
                "offered_qps must be finite and > 0 (got {})",
                self.offered_qps
            ));
        }
        if self.n_arrivals < 1 {
            return Err("n_arrivals must be >= 1".into());
        }
        if !self.hot_fraction.is_finite() || !(0.0..=1.0).contains(&self.hot_fraction) {
            return Err(format!(
                "hot_fraction must be in [0, 1] (got {})",
                self.hot_fraction
            ));
        }
        if self.hot_pool < 1 {
            return Err("hot_pool must be >= 1".into());
        }
        if self.batch < 1 {
            return Err("batch must be >= 1".into());
        }
        if self.flush_age_slots < 1 {
            return Err("flush_age_slots must be >= 1".into());
        }
        if self.deadline_slots < 1 {
            return Err("deadline_slots must be >= 1".into());
        }
        if self.degrade_watermark < 1 || self.shed_watermark < self.degrade_watermark {
            return Err(format!(
                "watermarks must satisfy 1 <= degrade <= shed (got degrade {}, shed {})",
                self.degrade_watermark, self.shed_watermark
            ));
        }
        if !self.quant_step.is_finite() || self.quant_step <= 0.0 {
            return Err(format!(
                "quant_step must be finite and > 0 (got {})",
                self.quant_step
            ));
        }
        if self.forensics_window_slots < 1 {
            return Err("forensics_window_slots must be >= 1".into());
        }
        Ok(())
    }
}

impl Default for ServeParams {
    /// `l = 10` search under the standard serving shape.
    fn default() -> Self {
        ServeParams::new(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        ServeParams::default().validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "slot_ns")]
    fn zero_slot_is_rejected() {
        let _ = ServeParams::new(10).slot_ns(0);
    }

    #[test]
    #[should_panic(expected = "offered_qps")]
    fn nan_qps_is_rejected() {
        let _ = ServeParams::new(10).offered_qps(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "hot_fraction")]
    fn out_of_range_hot_fraction_is_rejected() {
        let _ = ServeParams::new(10).hot_set(1.5, 4);
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn inverted_watermarks_are_rejected() {
        let _ = ServeParams::new(10).watermarks(64, 8);
    }

    #[test]
    #[should_panic(expected = "quant_step")]
    fn negative_quant_step_is_rejected() {
        let _ = ServeParams::new(10).cache(8, -1.0);
    }

    #[test]
    #[should_panic(expected = "forensics_window_slots")]
    fn zero_forensics_window_is_rejected() {
        let _ = ServeParams::new(10).forensics(0, 4);
    }

    #[test]
    fn forensics_builder_sets_both_knobs() {
        let p = ServeParams::new(10).forensics(16, 0);
        assert_eq!(p.forensics_window_slots, 16);
        assert_eq!(p.forensics_slow_n, 0);
        p.validate().unwrap();
        let bad = ServeParams {
            forensics_window_slots: 0,
            ..ServeParams::default()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .contains("forensics_window_slots"));
    }

    #[test]
    fn validate_catches_directly_filled_fields() {
        let p = ServeParams {
            deadline_slots: 0,
            ..ServeParams::default()
        };
        assert!(p.validate().unwrap_err().contains("deadline_slots"));
        let mut p = ServeParams::default();
        p.search.epsilon = f32::NAN;
        assert!(p.validate().is_err());
    }
}
