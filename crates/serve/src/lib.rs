//! Distributed online query serving over the partitioned k-NN graph.
//!
//! Construction (the `dnnd` crate) answers "how do we *build* the
//! neighborhood graph at scale"; this crate answers "how do we *serve* it
//! online": queries arrive continuously at some offered load, each one has
//! a latency budget, and the fleet must keep its SLOs under overload by
//! degrading gracefully instead of collapsing.
//!
//! The layer is built from four deterministic pieces:
//!
//! - [`workload::ArrivalPlan`] — an open-loop Poisson workload stamped on
//!   the virtual clock, a pure PRF of one serve seed (the same
//!   construction `ygm::fault` uses for its fault plans);
//! - [`params::ServeParams`] — one validated value holding the workload
//!   shape, micro-batching policy, admission-control ladder, and cache
//!   configuration;
//! - [`cache::ResultCache`] — an exact-LRU result cache keyed on
//!   quantized query vectors;
//! - [`engine::serve_on_comm`] — the per-slot frontend loop: adaptive
//!   micro-batching (flush at batch size B or at a virtual-time age,
//!   whichever first), deadline and watermark shedding, a degrade ladder
//!   that trades per-query search quality for drain rate, and SLO
//!   telemetry into the schema-v3 run report (`serving` section).
//!
//! ## Determinism contract
//!
//! For a fixed `(serve seed, ServeParams, base set, graph, query pool)`,
//! a serving run is **bit-identical** across reruns *and across rank
//! counts*: the admitted/shed/cache-hit sets, every latency measurement,
//! and the result digest are all reproduced exactly. Two mechanisms make
//! this hold:
//!
//! 1. **Replicated control plane.** Every rank computes the same
//!    decisions from the same seed over the same global logical queue;
//!    only search execution is distributed, and its results are gathered
//!    back to all ranks. The engine asserts cross-rank equality of a
//!    statistics fingerprint at the end of every run.
//! 2. **The slot clock.** SLO-visible quantities are measured in serving
//!    slots (fixed spans of virtual time pinned by [`ygm::SlotTimer`]),
//!    never in raw virtual nanoseconds, which legitimately differ across
//!    rank counts.
//!
//! Injected transport faults (`ygm::fault`) do not perturb the decision
//! sequence; they surface purely as capped whole-slot latency penalties
//! on the affected dispatch windows.

pub mod cache;
pub mod engine;
pub mod forensics;
pub mod graph_mode;
pub mod params;
pub mod workload;

pub use cache::{QuantizeKey, ResultCache};
pub use engine::{
    attach_serving, attach_vdb, run_serve, run_serve_vdb, serve_on_comm, serve_vdb_on_comm,
    ServeOutcome, ServingStats, TenantStats, VdbServeConfig, VdbServeStats,
};
pub use forensics::{attach_forensics, ForensicsCollector, QueryForensics, QueryRecord, Verdict};
pub use graph_mode::GraphMode;
pub use params::ServeParams;
pub use workload::{
    zipf_cdf, Arrival, ArrivalPlan, ArrivalProcess, BurstWindow, Diurnal, FilterTraffic,
    MutateTraffic, PoolDist, PoolPicker, TenantClass, WorkloadSpec, FILTER_BUCKETS,
};
