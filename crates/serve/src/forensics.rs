//! Per-query forensics: lifecycle records, tail-based sampling, and the
//! slow-query log.
//!
//! Every arrival — answered, cache hit, or shed — leaves one
//! [`QueryRecord`] behind: its admission verdict, degrade level,
//! quantized cache-key hash, search-effort counters, and a per-stage
//! virtual-time waterfall (admission → batch wait → dispatch → beam
//! search → response) whose stages **sum exactly** to the end-to-end
//! latency in slots. All values derive from the replicated control plane
//! and the slot clock, so the records — and everything computed from
//! them — are bit-identical across reruns and across rank counts.
//!
//! Retaining every record in the run report would dwarf the aggregates,
//! so a deterministic *tail-based sampler* keeps only the interesting
//! ones: the slowest `slow_n` per `window_slots`-wide window of the slot
//! axis (ties broken by a pure PRF of the serve seed, never by map
//! order), plus **every** shed, degraded, and deadline-missing query as
//! unconditional exemplars. Aggregate per-stage histograms still cover
//! *all* queries, so the sampled exemplars never bias the waterfall
//! panel.
//!
//! Records deliberately do **not** carry the home rank: `pool_id %
//! n_ranks` depends on the rank count and would break the bit-identity
//! contract. The JSONL slow-query log ([`QueryForensics::slow_query_log`])
//! derives it at write time for the run it describes.

use obs::{QueryExemplar, QueryForensicsSection, RunReport};
use std::collections::BTreeMap;

/// Attach a finalized forensics value to `report` as its schema-v6
/// `query_forensics` section.
pub fn attach_forensics(report: &mut RunReport, forensics: &QueryForensics) {
    report.query_forensics = Some(forensics.to_section());
}

/// PRF salt for slow-sample tie-breaking, disjoint from the salts used
/// by `ygm::fault` and the workload generator.
const SALT_FORENSICS: u64 = 0x05EB_FE03;

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv_seed() -> u64 {
    FNV_OFFSET
}

pub(crate) fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a digest of a quantized cache key — the compact fingerprint a
/// record carries instead of the full coordinate vector.
pub fn hash_quantized_key(key: &[i64]) -> u64 {
    let mut h = fnv_seed();
    for &v in key {
        h = fnv_u64(h, v as u64);
    }
    h
}

/// How the frontend disposed of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum Verdict {
    /// Answered from the result cache in the arrival slot.
    CacheHit,
    /// Dispatched and answered by a search.
    #[default]
    Answered,
    /// Dropped at admission: queue above the shed watermark.
    ShedOverload,
    /// Dropped from the queue after exceeding its deadline budget.
    ShedDeadline,
}

impl Verdict {
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::CacheHit => "cache_hit",
            Verdict::Answered => "answered",
            Verdict::ShedOverload => "shed_overload",
            Verdict::ShedDeadline => "shed_deadline",
        }
    }
}

/// Why the sampler retained a record (bitflags).
pub const WHY_SLOW: u32 = 1;
pub const WHY_SHED: u32 = 2;
pub const WHY_DEGRADED: u32 = 4;
pub const WHY_DEADLINE_MISS: u32 = 8;

/// Render a `WHY_*` bitmask as a stable `"|"`-joined string.
pub fn why_string(why: u32) -> String {
    let mut parts = Vec::new();
    if why & WHY_SLOW != 0 {
        parts.push("slow");
    }
    if why & WHY_SHED != 0 {
        parts.push("shed");
    }
    if why & WHY_DEGRADED != 0 {
        parts.push("degraded");
    }
    if why & WHY_DEADLINE_MISS != 0 {
        parts.push("deadline_miss");
    }
    parts.join("|")
}

/// The full lifecycle of one query through the serving loop. Built from
/// replicated state only — identical on every rank and across rank
/// counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryRecord {
    /// Arrival index (position in the workload plan).
    pub idx: u64,
    /// Query-pool id. The home rank is `pool_id % n_ranks` *for a given
    /// run*; it is derived at log-write time, never stored.
    pub pool_id: u64,
    /// Tenant class index (0 when the workload declares no classes).
    pub tenant: u64,
    pub verdict: Verdict,
    /// Degrade level the answering dispatch ran at (0 when not answered
    /// by a search).
    pub degrade_level: u64,
    /// FNV-1a hash of the quantized cache key.
    pub cache_key_hash: u64,
    pub arrived_slot: u64,
    /// Slot the verdict landed (`arrived_slot + latency_slots`, always).
    pub done_slot: u64,
    /// Stage waterfall, in slots. The five stages sum exactly to
    /// `latency_slots` for every record — asserted at construction.
    pub admission_slots: u64,
    pub batch_wait_slots: u64,
    pub dispatch_slots: u64,
    pub search_slots: u64,
    pub response_slots: u64,
    pub latency_slots: u64,
    /// Beam expansions executed by the answering search (0 otherwise).
    pub expansions: u64,
    /// Distance evaluations charged to the answering search.
    pub dist_evals: u64,
    /// Search rounds (frontier waves) of the answering search.
    pub rounds: u64,
    /// Shed past the deadline, or answered later than the deadline
    /// budget allows.
    pub deadline_miss: bool,
}

impl QueryRecord {
    /// Sum of the five waterfall stages — equals `latency_slots` by
    /// construction.
    pub fn stage_sum(&self) -> u64 {
        self.admission_slots
            + self.batch_wait_slots
            + self.dispatch_slots
            + self.search_slots
            + self.response_slots
    }

    fn check(self) -> Self {
        debug_assert_eq!(self.stage_sum(), self.latency_slots);
        debug_assert_eq!(self.done_slot - self.arrived_slot, self.latency_slots);
        self
    }

    /// Fold every field into an FNV-1a accumulator.
    fn digest_into(&self, mut h: u64) -> u64 {
        for v in [
            self.idx,
            self.pool_id,
            self.tenant,
            self.verdict as u64,
            self.degrade_level,
            self.cache_key_hash,
            self.arrived_slot,
            self.done_slot,
            self.admission_slots,
            self.batch_wait_slots,
            self.dispatch_slots,
            self.search_slots,
            self.response_slots,
            self.latency_slots,
            self.expansions,
            self.dist_evals,
            self.rounds,
            self.deadline_miss as u64,
        ] {
            h = fnv_u64(h, v);
        }
        h
    }
}

/// Collects one [`QueryRecord`] per arrival during a serving run; call
/// [`Self::finalize`] after the loop drains to run the tail sampler.
#[derive(Debug, Clone)]
pub struct ForensicsCollector {
    serve_seed: u64,
    window_slots: u64,
    slow_n: u64,
    deadline_slots: u64,
    records: Vec<QueryRecord>,
}

impl ForensicsCollector {
    pub fn new(serve_seed: u64, window_slots: u64, slow_n: u64, deadline_slots: u64) -> Self {
        assert!(window_slots >= 1, "forensics window must be >= 1 slot");
        ForensicsCollector {
            serve_seed,
            window_slots,
            slow_n,
            deadline_slots,
            records: Vec::new(),
        }
    }

    /// Answered from the cache in the arrival slot: every stage is 0.
    pub fn cache_hit(&mut self, idx: u64, pool_id: u64, tenant: u64, key_hash: u64, slot: u64) {
        self.records.push(
            QueryRecord {
                idx,
                pool_id,
                tenant,
                verdict: Verdict::CacheHit,
                cache_key_hash: key_hash,
                arrived_slot: slot,
                done_slot: slot,
                ..QueryRecord::default()
            }
            .check(),
        );
    }

    /// Refused at admission: the verdict lands in the arrival slot.
    pub fn shed_overload(&mut self, idx: u64, pool_id: u64, tenant: u64, key_hash: u64, slot: u64) {
        self.records.push(
            QueryRecord {
                idx,
                pool_id,
                tenant,
                verdict: Verdict::ShedOverload,
                cache_key_hash: key_hash,
                arrived_slot: slot,
                done_slot: slot,
                ..QueryRecord::default()
            }
            .check(),
        );
    }

    /// Shed from the queue after aging out: all its latency was batch
    /// wait.
    pub fn shed_deadline(
        &mut self,
        idx: u64,
        pool_id: u64,
        tenant: u64,
        key_hash: u64,
        arrived_slot: u64,
        slot: u64,
    ) {
        let wait = slot - arrived_slot;
        self.records.push(
            QueryRecord {
                idx,
                pool_id,
                tenant,
                verdict: Verdict::ShedDeadline,
                cache_key_hash: key_hash,
                arrived_slot,
                done_slot: slot,
                batch_wait_slots: wait,
                latency_slots: wait,
                deadline_miss: true,
                ..QueryRecord::default()
            }
            .check(),
        );
    }

    /// Answered by a dispatched search. The waterfall decomposes the
    /// engine's latency accounting exactly: queueing time is batch wait,
    /// the search itself is the dispatch slot (1), and transport-fault
    /// penalties are dispatch overhead.
    #[allow(clippy::too_many_arguments)]
    pub fn answered(
        &mut self,
        idx: u64,
        pool_id: u64,
        tenant: u64,
        key_hash: u64,
        arrived_slot: u64,
        slot: u64,
        penalty_slots: u64,
        degrade_level: u64,
        expansions: u64,
        dist_evals: u64,
        rounds: u64,
    ) {
        let wait = slot - arrived_slot;
        let latency = wait + 1 + penalty_slots;
        self.records.push(
            QueryRecord {
                idx,
                pool_id,
                tenant,
                verdict: Verdict::Answered,
                degrade_level,
                cache_key_hash: key_hash,
                arrived_slot,
                done_slot: arrived_slot + latency,
                admission_slots: 0,
                batch_wait_slots: wait,
                dispatch_slots: penalty_slots,
                response_slots: 0,
                search_slots: 1,
                latency_slots: latency,
                expansions,
                dist_evals,
                rounds,
                deadline_miss: latency > self.deadline_slots,
            }
            .check(),
        );
    }

    /// Run the tail sampler and aggregate the stage histograms.
    pub fn finalize(mut self) -> QueryForensics {
        let considered = self.records.len() as u64;
        self.records.sort_unstable_by_key(|r| r.idx);

        // Aggregate waterfall over ALL records (the sampler only thins
        // the exemplar list, never the histograms).
        let mut hists: [BTreeMap<u64, u64>; 5] = Default::default();
        for r in &self.records {
            for (h, v) in hists.iter_mut().zip([
                r.admission_slots,
                r.batch_wait_slots,
                r.dispatch_slots,
                r.search_slots,
                r.response_slots,
            ]) {
                *h.entry(v).or_insert(0) += 1;
            }
        }
        let stage_hists: Vec<(String, Vec<(u64, u64)>)> = STAGE_NAMES
            .iter()
            .zip(hists)
            .map(|(n, h)| (n.to_string(), h.into_iter().collect()))
            .collect();

        // Tail-based retention: slowest `slow_n` per window of the slot
        // axis, ties broken by a PRF of the serve seed so the choice is
        // seed-deterministic, not incidental.
        let mut why: Vec<u32> = vec![0; self.records.len()];
        let mut by_window: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, r) in self.records.iter().enumerate() {
            by_window
                .entry(r.done_slot / self.window_slots)
                .or_default()
                .push(i);
        }
        for (_, mut idxs) in by_window {
            idxs.sort_unstable_by_key(|&i| {
                let r = &self.records[i];
                (
                    std::cmp::Reverse(r.latency_slots),
                    ygm::fault::mix(self.serve_seed, SALT_FORENSICS, r.idx, 0, 0),
                    r.idx,
                )
            });
            for &i in idxs.iter().take(self.slow_n as usize) {
                why[i] |= WHY_SLOW;
            }
        }
        // Unconditional exemplars: every shed, degraded, and
        // deadline-missing query is kept regardless of speed.
        for (i, r) in self.records.iter().enumerate() {
            if matches!(r.verdict, Verdict::ShedOverload | Verdict::ShedDeadline) {
                why[i] |= WHY_SHED;
            }
            if r.degrade_level > 0 {
                why[i] |= WHY_DEGRADED;
            }
            if r.deadline_miss {
                why[i] |= WHY_DEADLINE_MISS;
            }
        }

        let sampled: Vec<(QueryRecord, u32)> = self
            .records
            .into_iter()
            .zip(why)
            .filter(|&(_, w)| w != 0)
            .collect();
        let retained_slow = sampled.iter().filter(|&&(_, w)| w & WHY_SLOW != 0).count() as u64;
        let retained_exemplar = sampled.len() as u64 - retained_slow;

        let mut digest = fnv_seed();
        for v in [self.window_slots, self.slow_n, considered] {
            digest = fnv_u64(digest, v);
        }
        for (stage, buckets) in &stage_hists {
            digest = fnv_u64(digest, stage.len() as u64);
            for &(s, c) in buckets {
                digest = fnv_u64(digest, s);
                digest = fnv_u64(digest, c);
            }
        }
        for (r, w) in &sampled {
            digest = r.digest_into(fnv_u64(digest, *w as u64));
        }

        QueryForensics {
            window_slots: self.window_slots,
            slow_n: self.slow_n,
            considered,
            retained_slow,
            retained_exemplar,
            sampled,
            stage_hists,
            digest,
        }
    }
}

/// Waterfall stage names, in pipeline order.
pub const STAGE_NAMES: [&str; 5] = ["admission", "batch_wait", "dispatch", "search", "response"];

/// Finalized forensics of one serving run: the sampled records, the
/// all-query stage histograms, and a digest folded into the cross-rank
/// fingerprint check. Replicated — identical on every rank and across
/// rank counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryForensics {
    pub window_slots: u64,
    pub slow_n: u64,
    /// Every arrival got a record; this is how many the sampler saw.
    pub considered: u64,
    pub retained_slow: u64,
    pub retained_exemplar: u64,
    /// Retained records with their `WHY_*` masks, in arrival order.
    pub sampled: Vec<(QueryRecord, u32)>,
    /// `(stage name, exact histogram over ALL records)` per stage.
    pub stage_hists: Vec<(String, Vec<(u64, u64)>)>,
    /// FNV-1a digest over the sampler configuration, histograms, and
    /// sampled records.
    pub digest: u64,
}

impl QueryForensics {
    /// Translate into the run report's schema-v6 `query_forensics`
    /// section.
    pub fn to_section(&self) -> QueryForensicsSection {
        QueryForensicsSection {
            window_slots: self.window_slots,
            slow_n: self.slow_n,
            considered: self.considered,
            retained: self.sampled.len() as u64,
            retained_slow: self.retained_slow,
            retained_exemplar: self.retained_exemplar,
            stage_hists: self.stage_hists.clone(),
            exemplars: self
                .sampled
                .iter()
                .map(|(r, w)| QueryExemplar {
                    idx: r.idx,
                    pool_id: r.pool_id,
                    tenant: r.tenant,
                    verdict: r.verdict.as_str().to_string(),
                    why: why_string(*w),
                    degrade_level: r.degrade_level,
                    cache_key_hash: r.cache_key_hash,
                    arrived_slot: r.arrived_slot,
                    done_slot: r.done_slot,
                    admission_slots: r.admission_slots,
                    batch_wait_slots: r.batch_wait_slots,
                    dispatch_slots: r.dispatch_slots,
                    search_slots: r.search_slots,
                    response_slots: r.response_slots,
                    latency_slots: r.latency_slots,
                    expansions: r.expansions,
                    dist_evals: r.dist_evals,
                    rounds: r.rounds,
                    deadline_miss: r.deadline_miss,
                })
                .collect(),
            digest: self.digest,
        }
    }

    /// Render the sampled records as a JSONL slow-query log: one compact
    /// JSON object per line, in arrival order. `n_ranks` is the rank
    /// count of *this* run — the home rank is derived here precisely
    /// because storing it would break rank-count bit-identity.
    pub fn slow_query_log(&self, n_ranks: usize) -> String {
        let mut out = String::new();
        for (r, w) in &self.sampled {
            out.push_str(&format!(
                concat!(
                    "{{\"idx\":{},\"pool_id\":{},\"tenant\":{},\"home_rank\":{},\"verdict\":\"{}\",",
                    "\"why\":\"{}\",\"degrade_level\":{},\"cache_key_hash\":\"{:016x}\",",
                    "\"arrived_slot\":{},\"done_slot\":{},\"admission_slots\":{},",
                    "\"batch_wait_slots\":{},\"dispatch_slots\":{},\"search_slots\":{},",
                    "\"response_slots\":{},\"latency_slots\":{},\"expansions\":{},",
                    "\"dist_evals\":{},\"rounds\":{},\"deadline_miss\":{}}}\n"
                ),
                r.idx,
                r.pool_id,
                r.tenant,
                r.pool_id as usize % n_ranks,
                r.verdict.as_str(),
                why_string(*w),
                r.degrade_level,
                r.cache_key_hash,
                r.arrived_slot,
                r.done_slot,
                r.admission_slots,
                r.batch_wait_slots,
                r.dispatch_slots,
                r.search_slots,
                r.response_slots,
                r.latency_slots,
                r.expansions,
                r.dist_evals,
                r.rounds,
                r.deadline_miss,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector() -> ForensicsCollector {
        ForensicsCollector::new(42, 8, 2, 8)
    }

    #[test]
    fn stage_sums_equal_latency_for_every_verdict() {
        let mut c = collector();
        c.cache_hit(0, 5, 0, 0xAA, 3);
        c.shed_overload(1, 6, 0, 0xBB, 3);
        c.shed_deadline(2, 7, 1, 0xCC, 3, 12);
        c.answered(3, 8, 1, 0xDD, 3, 7, 2, 1, 10, 200, 11);
        let f = c.finalize();
        assert_eq!(f.considered, 4);
        for (r, _) in &f.sampled {
            assert_eq!(r.stage_sum(), r.latency_slots);
            assert_eq!(r.done_slot - r.arrived_slot, r.latency_slots);
        }
    }

    #[test]
    fn answered_waterfall_decomposes_engine_latency() {
        let mut c = collector();
        // arrived 3, dispatched at slot 7, 2 penalty slots:
        // latency = (7-3) + 1 + 2 = 7.
        c.answered(0, 1, 0, 0, 3, 7, 2, 0, 5, 80, 6);
        let f = c.finalize();
        let (r, _) = &f.sampled[0];
        assert_eq!(r.batch_wait_slots, 4);
        assert_eq!(r.dispatch_slots, 2);
        assert_eq!(r.search_slots, 1);
        assert_eq!(r.latency_slots, 7);
        assert_eq!(r.done_slot, 10);
    }

    #[test]
    fn deadline_miss_flags_follow_the_budget() {
        let mut c = ForensicsCollector::new(1, 8, 0, 4);
        c.answered(0, 1, 0, 0, 0, 2, 0, 0, 1, 1, 1); // latency 3 <= 4
        c.answered(1, 2, 0, 0, 0, 4, 1, 0, 1, 1, 1); // latency 6 > 4
        c.shed_deadline(2, 3, 0, 0, 0, 5);
        let f = c.finalize();
        // slow_n = 0: only exemplars retained, and both deadline misses
        // are among them.
        let misses: Vec<u64> = f
            .sampled
            .iter()
            .filter(|(r, _)| r.deadline_miss)
            .map(|(r, _)| r.idx)
            .collect();
        assert_eq!(misses, vec![1, 2]);
        assert!(f.sampled.iter().all(|&(_, w)| w & WHY_SLOW == 0));
    }

    #[test]
    fn sampler_keeps_slowest_n_per_window() {
        let mut c = ForensicsCollector::new(7, 100, 1, 100);
        // Three answered queries in one window; latencies 1, 5, 3.
        c.answered(0, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1);
        c.answered(1, 2, 0, 0, 0, 4, 0, 0, 1, 1, 1);
        c.answered(2, 3, 0, 0, 2, 4, 0, 0, 1, 1, 1);
        let f = c.finalize();
        assert_eq!(f.retained_slow, 1);
        assert_eq!(f.retained_exemplar, 0);
        assert_eq!(f.sampled.len(), 1);
        assert_eq!(f.sampled[0].0.idx, 1); // the latency-5 query
        assert_eq!(f.sampled[0].1, WHY_SLOW);
        // Histograms still cover all three records.
        assert_eq!(f.considered, 3);
        let search = &f.stage_hists[3];
        assert_eq!(search.0, "search");
        assert_eq!(search.1, vec![(1, 3)]);
    }

    #[test]
    fn shed_and_degraded_are_unconditional_exemplars() {
        let mut c = ForensicsCollector::new(7, 8, 0, 100);
        c.shed_overload(0, 1, 0, 0, 0);
        c.answered(1, 2, 0, 0, 0, 0, 0, 2, 1, 1, 1);
        c.cache_hit(2, 3, 0, 0, 1);
        let f = c.finalize();
        assert_eq!(f.sampled.len(), 2);
        assert_eq!(f.sampled[0].1, WHY_SHED);
        assert_eq!(f.sampled[1].1, WHY_DEGRADED);
        assert_eq!(f.retained_exemplar, 2);
    }

    #[test]
    fn finalize_is_deterministic_and_digest_covers_records() {
        let fill = |c: &mut ForensicsCollector| {
            c.cache_hit(0, 5, 0, 0xAA, 0);
            c.answered(1, 6, 0, 0xBB, 0, 3, 1, 1, 4, 60, 5);
            c.shed_deadline(2, 7, 0, 0xCC, 1, 10);
        };
        let mut a = collector();
        let mut b = collector();
        fill(&mut a);
        fill(&mut b);
        let fa = a.finalize();
        assert_eq!(fa, b.clone().finalize());
        // Perturbing one record changes the digest.
        b.records[1].dist_evals += 1;
        assert_ne!(fa.digest, b.finalize().digest);
    }

    #[test]
    fn tie_break_is_a_prf_of_the_seed() {
        // Two equal-latency queries, one slot. Which survives depends
        // only on the seed.
        let run = |seed: u64| {
            let mut c = ForensicsCollector::new(seed, 8, 1, 100);
            c.answered(0, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1);
            c.answered(1, 2, 0, 0, 0, 0, 0, 0, 1, 1, 1);
            c.finalize().sampled[0].0.idx
        };
        let picks: Vec<u64> = (0..64).map(run).collect();
        assert!(picks.contains(&0) && picks.contains(&1));
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn section_translation_and_log_derive_home_rank() {
        let mut c = collector();
        c.answered(3, 10, 1, 0xFEED, 0, 9, 0, 1, 2, 30, 3);
        let f = c.finalize();
        let s = f.to_section();
        assert_eq!(s.considered, 1);
        assert_eq!(s.exemplars.len(), 1);
        let e = &s.exemplars[0];
        assert_eq!(e.verdict, "answered");
        assert_eq!(e.tenant, 1);
        assert!(e.why.contains("slow") && e.why.contains("degraded"));
        assert!(e.deadline_miss); // latency 10 > deadline 8
        assert_eq!(e.stage_sum(), e.latency_slots);
        assert_eq!(s.digest, f.digest);

        let log = f.slow_query_log(4);
        let line = log.lines().next().unwrap();
        assert!(line.contains("\"home_rank\":2")); // 10 % 4
        assert!(line.contains("\"tenant\":1"));
        assert!(line.contains("\"cache_key_hash\":\"000000000000feed\""));
        assert!(line.contains("\"deadline_miss\":true"));
        // One JSON object per line, parseable.
        obs::json::JsonValue::parse(line).unwrap();
        assert_ne!(f.slow_query_log(3), log); // home rank is per-run
    }

    #[test]
    fn why_string_orders_flags_stably() {
        assert_eq!(why_string(WHY_SLOW), "slow");
        assert_eq!(
            why_string(WHY_SLOW | WHY_SHED | WHY_DEADLINE_MISS),
            "slow|shed|deadline_miss"
        );
        assert_eq!(why_string(0), "");
    }
}
