//! Property and exactness tests of the composable workload DSL
//! (`serve::workload` + the spec grammar in `serve::params`):
//!
//! * the canonical spec string round-trips (`Display` → `FromStr` is the
//!   identity) over *arbitrary* valid specs, not just hand-picked ones;
//! * [`ArrivalPlan::generate`] is a pure PRF of its inputs — bit-identical
//!   across repeated generation and cloned parameters;
//! * Zipfian pool draws match an *independently recomputed* inverse-CDF
//!   draw per arrival, with exact integer per-pool-id counts.

use proptest::collection::vec as pvec;
use proptest::option;
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serve::workload::{SALT_POOL, SALT_TENANT};
use serve::{
    zipf_cdf, ArrivalPlan, ArrivalProcess, BurstWindow, Diurnal, FilterTraffic, MutateTraffic,
    PoolDist, ServeParams, TenantClass, WorkloadSpec,
};
use ygm::fault::mix;

// ---------------------------------------------------------------- strategies

fn arb_arrival() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        Just(ArrivalProcess::Open),
        (1u64..=100_000, 0u64..=10_000_000_000)
            .prop_map(|(clients, think_ns)| { ArrivalProcess::Closed { clients, think_ns } }),
    ]
}

fn arb_pool() -> impl Strategy<Value = PoolDist> {
    prop_oneof![
        Just(PoolDist::HotCold),
        // Finite f64 in [0, 8]; `Display` prints the shortest string that
        // re-parses to the identical bits, so no rounding is allowed here.
        (0u32..=8_000_000).prop_map(|m| PoolDist::Zipf {
            s: m as f64 / 1_000_000.0
        }),
    ]
}

fn arb_diurnal() -> impl Strategy<Value = Option<Diurnal>> {
    option::of((1u64..=86_400_000_000_000, 0u32..=900_000).prop_map(
        |(period_ns, amp_millionths)| Diurnal {
            period_ns,
            amp: amp_millionths as f64 / 1_000_000.0,
        },
    ))
}

fn arb_bursts() -> impl Strategy<Value = Vec<BurstWindow>> {
    pvec(
        (
            0u64..=10_000_000_000,
            1u64..=5_000_000_000,
            1_000u32..=64_000,
        )
            .prop_map(|(at_ns, dur_ns, x_thousandths)| BurstWindow {
                at_ns,
                dur_ns,
                x: x_thousandths as f64 / 1_000.0,
            }),
        0..3,
    )
}

fn arb_tenants() -> impl Strategy<Value = Vec<TenantClass>> {
    let class = |name: &str, share_pct| TenantClass {
        name: name.to_string(),
        share_pct,
    };
    prop_oneof![
        Just(Vec::new()),
        (1u64..=99).prop_map(move |g| vec![class("gold", g), class("free", 100 - g)]),
        (1u64..=98).prop_flat_map(move |a| {
            (1u64..=(99 - a))
                .prop_map(move |b| vec![class("a-1", a), class("b_2", b), class("c", 100 - a - b)])
        }),
    ]
}

fn arb_filter() -> impl Strategy<Value = Option<FilterTraffic>> {
    option::of(
        (1u64..=100, 1u32..=1_000).prop_map(|(pct, sel_thousandths)| FilterTraffic {
            pct,
            sel: sel_thousandths as f64 / 1_000.0,
        }),
    )
}

fn arb_mutate() -> impl Strategy<Value = Option<MutateTraffic>> {
    option::of(
        (0u64..=500, 0u64..=500)
            .prop_filter("mutate needs at least one schedule", |&(i, d)| {
                i > 0 || d > 0
            })
            .prop_map(|(ins_every, del_every)| MutateTraffic {
                ins_every,
                del_every,
            }),
    )
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        arb_arrival(),
        arb_pool(),
        arb_diurnal(),
        arb_bursts(),
        (arb_filter(), arb_mutate()),
        arb_tenants(),
    )
        .prop_map(
            |(arrival, pool, diurnal, bursts, (filter, mutate), tenants)| WorkloadSpec {
                arrival,
                pool,
                diurnal,
                bursts,
                filter,
                mutate,
                tenants,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every valid spec survives `Display` → `FromStr` bit-for-bit: the
    /// canonical string is a faithful serialization of the AST.
    #[test]
    fn spec_display_parse_round_trips(spec in arb_spec()) {
        spec.validate().expect("strategy must generate valid specs");
        let text = spec.to_string();
        let back: WorkloadSpec = text
            .parse()
            .unwrap_or_else(|e| panic!("canonical spec {text:?} failed to re-parse: {e}"));
        prop_assert_eq!(back, spec, "round-trip of {}", text);
    }

    /// Open-loop plans are pure PRFs: regenerating (same params object,
    /// a clone, a rebuilt-from-spec-string params) yields the identical
    /// arrival vector.
    #[test]
    fn open_loop_plans_are_bit_identical_across_regeneration(
        seed in any::<u64>(),
        spec in arb_spec(),
        pool_len in 1usize..=64,
    ) {
        // Closed-loop arrivals are minted by the engine; only open-loop
        // specs have a static plan.
        let spec = WorkloadSpec { arrival: ArrivalProcess::Open, ..spec };
        let params = ServeParams::new(10)
            .serve_seed(seed)
            .n_arrivals(80)
            .offered_qps(5_000.0)
            .workload(spec.clone());
        let a = ArrivalPlan::generate(&params, pool_len);
        let b = ArrivalPlan::generate(&params, pool_len);
        prop_assert_eq!(&a, &b, "same params object");
        let c = ArrivalPlan::generate(&params.clone(), pool_len);
        prop_assert_eq!(&a, &c, "cloned params");
        let rebuilt = ServeParams::new(10)
            .serve_seed(seed)
            .n_arrivals(80)
            .offered_qps(5_000.0)
            .workload_str(&spec.to_string());
        let d = ArrivalPlan::generate(&rebuilt, pool_len);
        prop_assert_eq!(&a, &d, "params rebuilt from the canonical spec string");
    }
}

// ------------------------------------------------------------- exact counts

/// Zipf pool draws match an independently recomputed inverse-CDF draw per
/// arrival — same PRF key, same CDF, same partition-point rule — with
/// exact integer per-pool-id counts, and the empirical mass actually
/// concentrates on the head like a Zipfian should.
#[test]
fn zipf_draws_match_independently_computed_cdf_with_exact_counts() {
    const POOL: usize = 40;
    const N: usize = 400;
    const S: f64 = 1.1;
    const SEED: u64 = 0xD151;
    let params = ServeParams::new(10)
        .serve_seed(SEED)
        .n_arrivals(N)
        .offered_qps(4_000.0)
        .workload_str("zipf:s=1.1");
    let plan = ArrivalPlan::generate(&params, POOL);
    assert_eq!(plan.arrivals.len(), N);

    // Independent recomputation: this test owns its own CDF walk and PRF
    // keying, sharing only the published salt and `zipf_cdf` contract.
    let cdf = zipf_cdf(POOL, S);
    assert!((cdf[POOL - 1] - 1.0).abs() < 1e-12, "CDF must end at 1");
    let mut expected_counts = vec![0u64; POOL];
    for (i, a) in plan.arrivals.iter().enumerate() {
        let i = i as u64;
        assert_eq!(a.idx, i, "flat-rate open-loop arrivals keep index order");
        let mut rng = ChaCha8Rng::seed_from_u64(mix(SEED, SALT_POOL, i, 0, 0));
        let u: f64 = rng.gen_range(0.0..1.0);
        let want = cdf.partition_point(|&c| c <= u).min(POOL - 1);
        assert_eq!(
            a.pool_id, want,
            "arrival {i}: plan drew pool id {} but the inverse CDF says {want}",
            a.pool_id
        );
        expected_counts[want] += 1;
    }
    let mut got_counts = vec![0u64; POOL];
    for a in &plan.arrivals {
        got_counts[a.pool_id] += 1;
    }
    assert_eq!(got_counts, expected_counts, "exact per-pool-id counts");
    assert_eq!(got_counts.iter().sum::<u64>(), N as u64);

    // Zipf s=1.1 over 40 ids puts >50% of the mass on the first 4 ids
    // (analytically ~57%); uniform would put 10%. The draw stream must
    // show that skew.
    let head: u64 = got_counts[..4].iter().sum();
    assert!(
        head * 2 > N as u64,
        "zipf head mass too small: {head}/{N} on the hottest 4 of {POOL} ids"
    );
}

/// Tenant assignment is a share-weighted pure PRF of `(seed, key)`:
/// recomputing the draw independently reproduces every class index, and
/// the empirical split tracks the declared shares.
#[test]
fn tenant_assignment_matches_independent_prf_draws() {
    const N: usize = 300;
    const SEED: u64 = 0x7E7A;
    let params = ServeParams::new(10)
        .serve_seed(SEED)
        .n_arrivals(N)
        .offered_qps(4_000.0)
        .workload_str("tenants=gold:25%,free:75%");
    let plan = ArrivalPlan::generate(&params, 16);
    let mut per_class = [0u64; 2];
    for a in &plan.arrivals {
        let mut rng = ChaCha8Rng::seed_from_u64(mix(SEED, SALT_TENANT, a.idx, 0, 0));
        let u = rng.gen_range(0..100u64);
        let want = if u < 25 { 0 } else { 1 };
        assert_eq!(a.tenant, want, "arrival {}: tenant draw mismatch", a.idx);
        per_class[a.tenant] += 1;
    }
    assert_eq!(per_class[0] + per_class[1], N as u64);
    // 25% of 300 = 75 expected gold; allow a generous PRF tolerance.
    assert!(
        (30..=120).contains(&per_class[0]),
        "gold share wildly off its 25% target: {} of {N}",
        per_class[0]
    );
}

/// The burst window visibly compresses inter-arrival gaps: the burst
/// region of a modulated plan holds a super-proportional share of the
/// arrivals, and the plan stays exactly reproducible.
#[test]
fn burst_window_concentrates_arrivals_and_stays_deterministic() {
    let params = ServeParams::new(10)
        .serve_seed(0xB0057)
        .n_arrivals(300)
        .offered_qps(2_000.0)
        .slot_ns(1_000_000)
        .workload_str("burst:at=20ms,x=16,dur=60ms");
    let plan = ArrivalPlan::generate(&params, 16);
    assert_eq!(plan, ArrivalPlan::generate(&params, 16));
    let span_slots = plan.last_slot() + 1;
    let in_burst = plan
        .arrivals
        .iter()
        .filter(|a| (20..80).contains(&a.slot))
        .count();
    let before = plan.arrivals.iter().filter(|a| a.slot < 20).count();
    // Arrival *rate* inside the 16x window must dwarf the pre-burst rate
    // (the plan may end mid-window once n_arrivals is exhausted).
    let burst_slots = span_slots.clamp(21, 80) - 20;
    let burst_rate = in_burst as f64 / burst_slots as f64;
    let base_rate = (before.max(1)) as f64 / 20.0;
    assert!(
        before > 0 && in_burst > 0,
        "plan must straddle the burst boundary (before {before}, in {in_burst})"
    );
    assert!(
        burst_rate > base_rate * 4.0,
        "burst rate {burst_rate:.2}/slot not >> base rate {base_rate:.2}/slot"
    );
}
