//! Property tests of the metric axioms NN-Descent relies on (Section 2):
//! non-negativity, identity, and symmetry for every metric; the triangle
//! inequality for the true metrics (L2, L1, Chebyshev, Hamming, Jaccard).

use dataset::metric::{Chebyshev, Cosine, Hamming, Jaccard, Metric, SquaredL2, L1, L2};
use dataset::SparseVec;
use proptest::prelude::*;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len..=len)
}

fn vec_u8(len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), len..=len)
}

fn sparse() -> impl Strategy<Value = SparseVec> {
    prop::collection::vec(0u32..200, 0..20).prop_map(SparseVec::new)
}

const TRI_EPS: f32 = 1e-3;

macro_rules! axioms_f32 {
    ($name:ident, $metric:expr, $triangle:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            #[test]
            fn $name(a in vec_f32(8), b in vec_f32(8), c in vec_f32(8)) {
                let m = $metric;
                let dab = m.distance(&a, &b);
                let dba = m.distance(&b, &a);
                prop_assert!(dab >= 0.0, "non-negative");
                prop_assert!((dab - dba).abs() <= f32::EPSILON * dab.abs().max(1.0), "symmetric");
                prop_assert!(m.distance(&a, &a).abs() < 1e-4, "identity");
                if $triangle {
                    let dac = m.distance(&a, &c);
                    let dcb = m.distance(&c, &b);
                    prop_assert!(
                        dab <= dac + dcb + TRI_EPS * (dab + dac + dcb + 1.0),
                        "triangle: d(a,b)={} > d(a,c)+d(c,b)={}",
                        dab,
                        dac + dcb
                    );
                }
            }
        }
    };
}

axioms_f32!(l2_axioms, L2, true);
axioms_f32!(l1_axioms, L1, true);
axioms_f32!(chebyshev_axioms, Chebyshev, true);
axioms_f32!(sq_l2_axioms_no_triangle, SquaredL2, false);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cosine_axioms(a in vec_f32(8), b in vec_f32(8)) {
        let dab = Cosine.distance(&a, &b);
        prop_assert!((-1e-6..=2.0 + 1e-6).contains(&dab), "range");
        prop_assert!((dab - Cosine.distance(&b, &a)).abs() < 1e-6, "symmetric");
        prop_assert!(Cosine.distance(&a, &a).abs() < 1e-4, "identity");
    }

    #[test]
    fn hamming_axioms(a in vec_u8(12), b in vec_u8(12), c in vec_u8(12)) {
        let m = Hamming;
        let dab = m.distance(&a, &b);
        prop_assert!((0.0..=12.0).contains(&dab));
        prop_assert_eq!(dab, m.distance(&b, &a));
        prop_assert_eq!(m.distance(&a, &a), 0.0);
        prop_assert!(dab <= m.distance(&a, &c) + m.distance(&c, &b));
    }

    #[test]
    fn jaccard_axioms(a in sparse(), b in sparse(), c in sparse()) {
        let m = Jaccard;
        let dab = m.distance(&a, &b);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert_eq!(dab, m.distance(&b, &a));
        prop_assert_eq!(m.distance(&a, &a), 0.0);
        // Jaccard distance is a true metric (Steinhaus transform).
        prop_assert!(
            dab <= m.distance(&a, &c) + m.distance(&c, &b) + 1e-6,
            "jaccard triangle violated"
        );
    }

    #[test]
    fn l2_u8_matches_f32_promotion(a in vec_u8(16), b in vec_u8(16)) {
        let du = Metric::<Vec<u8>>::distance(&L2, &a, &b);
        let af: Vec<f32> = a.iter().map(|&x| f32::from(x)).collect();
        let bf: Vec<f32> = b.iter().map(|&x| f32::from(x)).collect();
        let df = Metric::<Vec<f32>>::distance(&L2, &af, &bf);
        prop_assert!((du - df).abs() <= df.abs() * 1e-5 + 1e-3);
    }

    #[test]
    fn sq_l2_is_square_of_l2(a in vec_f32(10), b in vec_f32(10)) {
        let d = Metric::<Vec<f32>>::distance(&L2, &a, &b);
        let sq = SquaredL2.distance(&a, &b);
        prop_assert!((sq - d * d).abs() <= sq.abs() * 1e-4 + 1e-3);
    }
}
