//! Property tests for the batched distance-kernel subsystem: every batched
//! evaluation path (cached norms, uncached norms, whatever SIMD dispatch
//! the host picks) must be **bit-identical** to the documented 8-lane
//! chunked scalar reference (`kernel::dot_scalar` / `kernel::l1_scalar`
//! plus the shared combiners), for every metric and a dimension sweep that
//! crosses the lane boundary in every way: 1..8, 17, 64, 100, 300, 960.

use dataset::batch::{BatchMetric, NormCache};
use dataset::kernel;
use dataset::metric::{
    Chebyshev, Cosine, Hamming, InnerProduct, Jaccard, Metric, SquaredL2, L1, L2,
};
use dataset::set::{PointId, PointSet};
use dataset::SparseVec;
use proptest::prelude::*;

const DIMS: &[usize] = &[1, 2, 3, 4, 5, 6, 7, 8, 17, 64, 100, 300, 960];
const MAX_DIM: usize = 960;

/// Pure scalar-reference distances, written against the reference kernels
/// only (no dispatch): the oracle every batched path must match bitwise.
fn ref_sq_l2(a: &[f32], b: &[f32]) -> f32 {
    kernel::sq_l2_from_dot(
        kernel::dot_scalar(a, a),
        kernel::dot_scalar(b, b),
        kernel::dot_scalar(a, b),
    )
}

fn ref_cosine(a: &[f32], b: &[f32]) -> f32 {
    kernel::cosine_from_dot(
        kernel::dot_scalar(a, a),
        kernel::dot_scalar(b, b),
        kernel::dot_scalar(a, b),
    )
}

fn data(max: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-50.0f32..50.0, 2 * max..=2 * max)
}

/// Evaluate metric `m` batched (with and without cache) against the given
/// scalar reference, bit-for-bit, over every dim in the sweep.
fn check_f32_metric<M, F>(m: &M, raw: &[f32], reference: F) -> Result<(), String>
where
    M: BatchMetric<Vec<f32>>,
    F: Fn(&[f32], &[f32]) -> f32,
{
    for &dim in DIMS {
        let q: Vec<f32> = raw[..dim].to_vec();
        let pts: Vec<Vec<f32>> = vec![
            raw[MAX_DIM..MAX_DIM + dim].to_vec(),
            raw[dim..2 * dim].to_vec(),
            q.clone(),      // aliased: candidate identical to the query
            vec![0.0; dim], // zero vector (degenerate cosine branch)
        ];
        let set = PointSet::new(pts);
        let cache = m.preprocess(&set);
        let ids: Vec<PointId> = (0..set.len() as PointId).collect();
        let mut cached = Vec::new();
        let mut uncached = Vec::new();
        m.distance_one_to_many(&q, &set, &cache, &ids, &mut cached);
        m.distance_one_to_many(&q, &set, &NormCache::empty(), &ids, &mut uncached);
        prop_assert_eq!(cached.len(), ids.len());
        for (i, &u) in ids.iter().enumerate() {
            let want = reference(&q, set.point(u));
            prop_assert_eq!(
                cached[i].to_bits(),
                want.to_bits(),
                "{} dim={} cand={}: cached batch {} != scalar reference {}",
                Metric::<Vec<f32>>::name(m),
                dim,
                u,
                cached[i],
                want
            );
            prop_assert_eq!(cached[i].to_bits(), uncached[i].to_bits());
        }
        // M×N row-major agreement with repeated 1×N.
        let qs = vec![q.clone(), set.point(0).clone()];
        let mut mn = Vec::new();
        m.distance_many_to_many(&qs, &set, &cache, &ids, &mut mn);
        prop_assert_eq!(mn.len(), 2 * ids.len());
        for (qi, qq) in qs.iter().enumerate() {
            let mut row = Vec::new();
            m.distance_one_to_many(qq, &set, &cache, &ids, &mut row);
            for i in 0..ids.len() {
                prop_assert_eq!(mn[qi * ids.len() + i].to_bits(), row[i].to_bits());
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dispatched_kernels_match_scalar_reference_bitwise(raw in data(MAX_DIM)) {
        // The dispatched primitives themselves (whatever path the host
        // selected) against the reference accumulation order.
        for &dim in DIMS {
            let a = &raw[..dim];
            let b = &raw[MAX_DIM..MAX_DIM + dim];
            prop_assert_eq!(kernel::dot(a, b).to_bits(), kernel::dot_scalar(a, b).to_bits());
            prop_assert_eq!(kernel::l1(a, b).to_bits(), kernel::l1_scalar(a, b).to_bits());
            prop_assert_eq!(kernel::norm_sq(a).to_bits(), kernel::dot_scalar(a, a).to_bits());
        }
    }

    #[test]
    fn batched_sq_l2_bit_identical(raw in data(MAX_DIM)) {
        check_f32_metric(&SquaredL2, &raw, ref_sq_l2)?;
    }

    #[test]
    fn batched_l2_bit_identical(raw in data(MAX_DIM)) {
        check_f32_metric(&L2, &raw, |a, b| ref_sq_l2(a, b).sqrt())?;
    }

    #[test]
    fn batched_cosine_bit_identical(raw in data(MAX_DIM)) {
        check_f32_metric(&Cosine, &raw, ref_cosine)?;
    }

    #[test]
    fn batched_inner_product_bit_identical(raw in data(MAX_DIM)) {
        check_f32_metric(&InnerProduct, &raw, |a, b| -kernel::dot_scalar(a, b))?;
    }

    #[test]
    fn batched_l1_bit_identical(raw in data(MAX_DIM)) {
        check_f32_metric(&L1, &raw, kernel::l1_scalar)?;
    }

    #[test]
    fn batched_chebyshev_bit_identical(raw in data(MAX_DIM)) {
        // Default (per-pair) batch impl vs Metric::distance directly.
        check_f32_metric(&Chebyshev, &raw, |a, b| {
            Chebyshev.distance(&a.to_vec(), &b.to_vec())
        })?;
    }

    #[test]
    fn batched_hamming_bit_identical(bytes in prop::collection::vec(any::<u8>(), 2 * MAX_DIM..=2 * MAX_DIM)) {
        for &dim in DIMS {
            let q: Vec<u8> = bytes[..dim].to_vec();
            let set = PointSet::new(vec![
                bytes[MAX_DIM..MAX_DIM + dim].to_vec(),
                q.clone(),
            ]);
            let cache = BatchMetric::<Vec<u8>>::preprocess(&Hamming, &set);
            let ids: Vec<PointId> = vec![0, 1];
            let mut out = Vec::new();
            Hamming.distance_one_to_many(&q, &set, &cache, &ids, &mut out);
            for (i, &u) in ids.iter().enumerate() {
                let want = kernel::hamming_u8(&q, set.point(u)) as f32;
                prop_assert_eq!(out[i].to_bits(), want.to_bits());
                prop_assert_eq!(out[i].to_bits(), Hamming.distance(&q, set.point(u)).to_bits());
            }
            prop_assert_eq!(out[1], 0.0); // aliased candidate
        }
    }

    #[test]
    fn batched_jaccard_bit_identical(ids_a in prop::collection::vec(0u32..500, 0..40),
                                     ids_b in prop::collection::vec(0u32..500, 0..40)) {
        let q = SparseVec::new(ids_a);
        let set = PointSet::new(vec![SparseVec::new(ids_b), q.clone(), SparseVec::default()]);
        let cache = BatchMetric::<SparseVec>::preprocess(&Jaccard, &set);
        let ids: Vec<PointId> = vec![0, 1, 2];
        let mut out = Vec::new();
        Jaccard.distance_one_to_many(&q, &set, &cache, &ids, &mut out);
        for (i, &u) in ids.iter().enumerate() {
            prop_assert_eq!(out[i].to_bits(), Jaccard.distance(&q, set.point(u)).to_bits());
        }
        prop_assert_eq!(out[1], 0.0); // aliased candidate
    }
}

#[test]
fn empty_batches_for_every_metric() {
    let set = PointSet::new(vec![vec![1.0f32, 2.0], vec![3.0, 4.0]]);
    let q = vec![0.5f32, 0.5];
    let mut out = vec![9.0f32; 3];
    macro_rules! check_empty {
        ($m:expr) => {
            let cache = $m.preprocess(&set);
            $m.distance_one_to_many(&q, &set, &cache, &[], &mut out);
            assert!(
                out.is_empty(),
                "{} left stale output",
                Metric::<Vec<f32>>::name(&$m)
            );
            $m.distance_many_to_many(&[], &set, &cache, &[0, 1], &mut out);
            assert!(out.is_empty());
        };
    }
    check_empty!(SquaredL2);
    check_empty!(L2);
    check_empty!(Cosine);
    check_empty!(InnerProduct);
    check_empty!(L1);
    check_empty!(Chebyshev);
}

#[test]
fn singleton_and_aliased_batches() {
    let q = vec![0.25f32, -1.5, 3.0, 0.0, 7.5];
    let set = PointSet::new(vec![q.clone(), vec![1.0; 5]]);
    let cache = SquaredL2.preprocess(&set);
    let mut out = Vec::new();
    // Singleton batch.
    SquaredL2.distance_one_to_many(&q, &set, &cache, &[1], &mut out);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].to_bits(), ref_sq_l2(&q, &[1.0; 5]).to_bits());
    // Aliased query == candidate: dot form cancels to exactly zero
    // (norms and dot come from the identical kernel invocation).
    SquaredL2.distance_one_to_many(&q, &set, &cache, &[0], &mut out);
    assert_eq!(out[0], 0.0);
    Cosine.distance_one_to_many(&q, &set, &Cosine.preprocess(&set), &[0], &mut out);
    assert!(out[0].abs() <= 1e-6);
}

/// Forcing the scalar dispatch path must not change any bit. Runs both
/// paths inside one test (force_dispatch is process-global state).
#[test]
fn forced_scalar_dispatch_is_bit_identical_to_auto() {
    let set = dataset::synth::uniform(64, 100, 42);
    let q = set.point(0).clone();
    let ids: Vec<PointId> = (0..set.len() as PointId).collect();
    let cache = SquaredL2.preprocess(&set);
    let mut auto_out = Vec::new();
    SquaredL2.distance_one_to_many(&q, &set, &cache, &ids, &mut auto_out);
    let before = kernel::dispatch();
    kernel::force_dispatch(Some(kernel::Dispatch::Scalar));
    let scalar_cache = SquaredL2.preprocess(&set);
    let mut scalar_out = Vec::new();
    SquaredL2.distance_one_to_many(&q, &set, &scalar_cache, &ids, &mut scalar_out);
    kernel::force_dispatch(Some(before));
    for (a, s) in auto_out.iter().zip(&scalar_out) {
        assert_eq!(a.to_bits(), s.to_bits());
    }
}
