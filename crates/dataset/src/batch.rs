//! Batched distance evaluation: the `BatchMetric` extension trait plus
//! cached-norm preprocessing.
//!
//! The NN-Descent family naturally emits 1×N ("this query against these
//! candidates") and M×N ("these queries against those candidates") shapes;
//! `BatchMetric` gives every metric those entry points while preserving the
//! per-pair bits of `Metric::distance` exactly. The dot-product family
//! (SquaredL2 / L2 / Cosine / InnerProduct) additionally exploits
//! `||a-b||² = ||a||² + ||b||² − 2a·b`: [`BatchMetric::preprocess`]
//! computes `||p||²` once per [`PointSet`] and batched evaluation reads the
//! cache instead of re-deriving norms per pair. Because the cache is filled
//! by the *same* kernel (`kernel::norm_sq`) that an uncached evaluation
//! would call, cached and uncached results are bit-identical.
//!
//! Cache invalidation contract: a [`NormCache`] is valid only for the exact
//! `PointSet` it was built from — any mutation or reordering of the set
//! requires rebuilding it. Caches are indexed by `PointId`, so they must be
//! rebuilt per set, never shared across sets (an empty cache is always
//! valid and falls back to fresh norms).

use crate::kernel;
use crate::metric::{Chebyshev, Cosine, Hamming, InnerProduct, Jaccard, Metric, SquaredL2, L1, L2};
use crate::point::{dense, Point, SparseVec};
use crate::set::{PointId, PointSet};

/// Squared norms (`||p||²`) for every point of one `PointSet`, or empty.
///
/// An empty cache is always safe: lookups fall back to recomputing the
/// norm with the same kernel, yielding the same bits at 3× the passes.
#[derive(Debug, Clone, Default)]
pub struct NormCache {
    norms_sq: Vec<f32>,
}

impl NormCache {
    /// A cache with no entries; every lookup recomputes.
    pub fn empty() -> NormCache {
        NormCache::default()
    }

    /// Whether any norms are cached.
    pub fn is_empty(&self) -> bool {
        self.norms_sq.is_empty()
    }

    /// Number of cached norms (= set length it was built from, or 0).
    pub fn len(&self) -> usize {
        self.norms_sq.len()
    }

    /// Build from precomputed squared norms (index = `PointId`).
    pub fn from_norms_sq(norms_sq: Vec<f32>) -> NormCache {
        NormCache { norms_sq }
    }

    /// `||point(id)||²` — cached if present, else recomputed with the
    /// identical kernel (bit-identical either way).
    #[inline]
    pub fn norm_sq_of(&self, id: PointId, v: &[f32]) -> f32 {
        match self.norms_sq.get(id as usize) {
            Some(&n) => n,
            None => kernel::norm_sq(v),
        }
    }
}

/// Build the squared-norm cache for a dense f32 set.
fn dense_norm_cache(set: &PointSet<Vec<f32>>) -> NormCache {
    NormCache::from_norms_sq(set.iter().map(|(_, p)| kernel::norm_sq(p)).collect())
}

/// Batched distance evaluation over a `PointSet`.
///
/// Default methods evaluate pair-by-pair via `Metric::distance`, so every
/// metric gets the batched entry points for free; the hot dense metrics
/// override them with cached-norm kernels. **Contract:** overrides must be
/// bit-identical to the default for every pair, and `out[i]` must equal
/// the distance for `cands[i]` (row-major `qs × cands` for M×N).
pub trait BatchMetric<P: Point>: Metric<P> {
    /// One-time per-set preprocessing (e.g. squared norms). The returned
    /// cache is only valid for `set` as passed — rebuild after mutation.
    fn preprocess(&self, _set: &PointSet<P>) -> NormCache {
        NormCache::empty()
    }

    /// Distances from `q` to each of `cands` (1×N). Clears `out` and
    /// leaves `out.len() == cands.len()`.
    fn distance_one_to_many(
        &self,
        q: &P,
        set: &PointSet<P>,
        _cache: &NormCache,
        cands: &[PointId],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.extend(cands.iter().map(|&u| self.distance(q, set.point(u))));
    }

    /// Distances for every `(q, cand)` pair (M×N), row-major: row `i`
    /// holds distances from `qs[i]`. Leaves `out.len() == qs.len() *
    /// cands.len()`.
    fn distance_many_to_many(
        &self,
        qs: &[P],
        set: &PointSet<P>,
        cache: &NormCache,
        cands: &[PointId],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.reserve(qs.len() * cands.len());
        let mut row = Vec::with_capacity(cands.len());
        for q in qs {
            self.distance_one_to_many(q, set, cache, cands, &mut row);
            out.extend_from_slice(&row);
        }
    }
}

/// Shared 1×N body for the squared-L2 family: one norm for the query, one
/// cached (or recomputed) norm plus one dot product per candidate.
#[inline]
fn sq_l2_one_to_many(
    q: &[f32],
    set: &PointSet<Vec<f32>>,
    cache: &NormCache,
    cands: &[PointId],
    out: &mut Vec<f32>,
) {
    out.clear();
    out.reserve(cands.len());
    let nq = kernel::norm_sq(q);
    for &u in cands {
        let p = set.point(u);
        let np = cache.norm_sq_of(u, p);
        out.push(kernel::sq_l2_from_dot(nq, np, kernel::dot(q, p)));
    }
}

impl BatchMetric<Vec<f32>> for SquaredL2 {
    fn preprocess(&self, set: &PointSet<Vec<f32>>) -> NormCache {
        dense_norm_cache(set)
    }

    fn distance_one_to_many(
        &self,
        q: &Vec<f32>,
        set: &PointSet<Vec<f32>>,
        cache: &NormCache,
        cands: &[PointId],
        out: &mut Vec<f32>,
    ) {
        sq_l2_one_to_many(q, set, cache, cands, out);
    }
}

impl BatchMetric<Vec<f32>> for L2 {
    fn preprocess(&self, set: &PointSet<Vec<f32>>) -> NormCache {
        dense_norm_cache(set)
    }

    fn distance_one_to_many(
        &self,
        q: &Vec<f32>,
        set: &PointSet<Vec<f32>>,
        cache: &NormCache,
        cands: &[PointId],
        out: &mut Vec<f32>,
    ) {
        sq_l2_one_to_many(q, set, cache, cands, out);
        for d in out.iter_mut() {
            *d = d.sqrt();
        }
    }
}

impl BatchMetric<Vec<f32>> for Cosine {
    fn preprocess(&self, set: &PointSet<Vec<f32>>) -> NormCache {
        dense_norm_cache(set)
    }

    fn distance_one_to_many(
        &self,
        q: &Vec<f32>,
        set: &PointSet<Vec<f32>>,
        cache: &NormCache,
        cands: &[PointId],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.reserve(cands.len());
        let nq = kernel::norm_sq(q);
        for &u in cands {
            let p = set.point(u);
            let np = cache.norm_sq_of(u, p);
            out.push(kernel::cosine_from_dot(nq, np, kernel::dot(q, p)));
        }
    }
}

impl BatchMetric<Vec<f32>> for InnerProduct {
    fn distance_one_to_many(
        &self,
        q: &Vec<f32>,
        set: &PointSet<Vec<f32>>,
        _cache: &NormCache,
        cands: &[PointId],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.extend(cands.iter().map(|&u| -kernel::dot(q, set.point(u))));
    }
}

impl BatchMetric<Vec<f32>> for L1 {
    fn distance_one_to_many(
        &self,
        q: &Vec<f32>,
        set: &PointSet<Vec<f32>>,
        _cache: &NormCache,
        cands: &[PointId],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.extend(cands.iter().map(|&u| kernel::l1(q, set.point(u))));
    }
}

// Order-independent / integer metrics ride on the defaults (already batch-
// shaped; no norm cache applies).
impl BatchMetric<Vec<f32>> for Chebyshev {}
impl BatchMetric<SparseVec> for Jaccard {}

impl BatchMetric<Vec<u8>> for Hamming {
    fn distance_one_to_many(
        &self,
        q: &Vec<u8>,
        set: &PointSet<Vec<u8>>,
        _cache: &NormCache,
        cands: &[PointId],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.extend(
            cands
                .iter()
                .map(|&u| kernel::hamming_u8(q, set.point(u)) as f32),
        );
    }
}

impl BatchMetric<Vec<u8>> for L2 {
    fn distance_one_to_many(
        &self,
        q: &Vec<u8>,
        set: &PointSet<Vec<u8>>,
        _cache: &NormCache,
        cands: &[PointId],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.extend(
            cands
                .iter()
                .map(|&u| dense::sq_l2_u8(q, set.point(u)).sqrt()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    fn assert_bits_match_scalar<M: BatchMetric<Vec<f32>>>(m: &M, set: &PointSet<Vec<f32>>) {
        let cache = m.preprocess(set);
        let ids: Vec<PointId> = (0..set.len() as PointId).collect();
        let mut out = Vec::new();
        for q in 0..set.len().min(8) {
            let qv = set.point(q as PointId);
            m.distance_one_to_many(qv, set, &cache, &ids, &mut out);
            assert_eq!(out.len(), ids.len());
            let mut out_nocache = Vec::new();
            m.distance_one_to_many(qv, set, &NormCache::empty(), &ids, &mut out_nocache);
            for (i, &u) in ids.iter().enumerate() {
                let scalar = m.distance(qv, set.point(u));
                assert_eq!(
                    out[i].to_bits(),
                    scalar.to_bits(),
                    "{} cached batch != scalar at q={q} u={u}",
                    Metric::<Vec<f32>>::name(m),
                );
                assert_eq!(out[i].to_bits(), out_nocache[i].to_bits());
            }
        }
    }

    #[test]
    fn dense_batches_are_bit_identical_to_scalar() {
        for dim in [3, 8, 17, 64] {
            let set = synth::uniform(40, dim, 7 + dim as u64);
            assert_bits_match_scalar(&SquaredL2, &set);
            assert_bits_match_scalar(&L2, &set);
            assert_bits_match_scalar(&Cosine, &set);
            assert_bits_match_scalar(&InnerProduct, &set);
            assert_bits_match_scalar(&L1, &set);
            assert_bits_match_scalar(&Chebyshev, &set);
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let set = synth::uniform(10, 16, 3);
        let cache = SquaredL2.preprocess(&set);
        let mut out = vec![1.0, 2.0];
        SquaredL2.distance_one_to_many(set.point(0), &set, &cache, &[], &mut out);
        assert!(out.is_empty());
        SquaredL2.distance_one_to_many(set.point(0), &set, &cache, &[5], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].to_bits(),
            SquaredL2.distance(set.point(0), set.point(5)).to_bits()
        );
    }

    #[test]
    fn many_to_many_is_row_major() {
        let set = synth::uniform(12, 9, 5);
        let cache = L2.preprocess(&set);
        let qs: Vec<Vec<f32>> = vec![set.point(1).clone(), set.point(4).clone()];
        let cands: Vec<PointId> = vec![0, 3, 7];
        let mut out = Vec::new();
        L2.distance_many_to_many(&qs, &set, &cache, &cands, &mut out);
        assert_eq!(out.len(), 6);
        for (qi, q) in qs.iter().enumerate() {
            for (ci, &u) in cands.iter().enumerate() {
                assert_eq!(
                    out[qi * cands.len() + ci].to_bits(),
                    L2.distance(q, set.point(u)).to_bits()
                );
            }
        }
    }

    #[test]
    fn norm_cache_matches_fresh_norms() {
        let set = synth::uniform(30, 24, 9);
        let cache = Cosine.preprocess(&set);
        assert_eq!(cache.len(), set.len());
        for (id, p) in set.iter() {
            assert_eq!(
                cache.norm_sq_of(id, p).to_bits(),
                kernel::norm_sq(p).to_bits()
            );
        }
        assert!(NormCache::empty().is_empty());
    }
}
