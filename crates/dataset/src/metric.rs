//! Distance metrics.
//!
//! NN-Descent's selling point (and the reason the paper picks it over
//! HNSW-style indices specialized for L2) is that it only ever touches the
//! data through a black-box distance function `theta(v1, v2) -> [0, inf)`,
//! assumed symmetric (Section 2). Every metric here returns a *distance*
//! (smaller = closer); similarity measures are converted (`1 - cos`,
//! `1 - jaccard`).

use crate::kernel;
use crate::point::{dense, SparseVec};

/// A symmetric distance function over points of type `P`.
pub trait Metric<P>: Clone + Send + Sync + 'static {
    /// Distance between two points; must be symmetric and non-negative.
    fn distance(&self, a: &P, b: &P) -> f32;

    /// Human-readable metric name for reports (matches Table 1 labels).
    fn name(&self) -> &'static str;
}

/// Euclidean (L2) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2;

/// Squared Euclidean distance. Rank-equivalent to [`L2`] but cheaper; the
/// recall of a k-NNG is identical under either, so construction may use
/// this while reports quote L2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredL2;

/// Cosine distance `1 - cos(a, b)`, the ANN-Benchmarks "Angular"/cosine
/// metric used by GloVe, NYTimes, and Last.fm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cosine;

/// Negative inner product shifted to be non-negative is not well-defined in
/// general; following common ANN practice this returns `-dot(a, b)` and is
/// only rank-meaningful (maximum inner-product search). Provided as an
/// example of NN-Descent's tolerance of non-metric similarity functions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InnerProduct;

/// Jaccard distance `1 - |A ∩ B| / |A ∪ B|` over sparse sets (Kosarak).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Jaccard;

/// Hamming distance over dense `u8` vectors (count of differing bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hamming;

/// Manhattan (L1) distance — ANN-Benchmarks' other Minkowski metric;
/// exercises NN-Descent's metric-genericity beyond the paper's set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1;

/// Chebyshev (L-infinity) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric<Vec<f32>> for L2 {
    #[inline]
    fn distance(&self, a: &Vec<f32>, b: &Vec<f32>) -> f32 {
        SquaredL2.distance(a, b).sqrt()
    }
    fn name(&self) -> &'static str {
        "L2"
    }
}

impl Metric<Vec<u8>> for L2 {
    #[inline]
    fn distance(&self, a: &Vec<u8>, b: &Vec<u8>) -> f32 {
        dense::sq_l2_u8(a, b).sqrt()
    }
    fn name(&self) -> &'static str {
        "L2"
    }
}

impl Metric<Vec<f32>> for SquaredL2 {
    // Canonical dot form `||a||² + ||b||² − 2a·b` — the exact arithmetic
    // the batched cached-norm kernels use, so per-pair bits never depend
    // on whether a norm came from a cache or was just computed.
    #[inline]
    fn distance(&self, a: &Vec<f32>, b: &Vec<f32>) -> f32 {
        kernel::sq_l2_from_dot(kernel::norm_sq(a), kernel::norm_sq(b), kernel::dot(a, b))
    }
    fn name(&self) -> &'static str {
        "SquaredL2"
    }
}

impl Metric<Vec<f32>> for Cosine {
    #[inline]
    fn distance(&self, a: &Vec<f32>, b: &Vec<f32>) -> f32 {
        kernel::cosine_from_dot(kernel::norm_sq(a), kernel::norm_sq(b), kernel::dot(a, b))
    }
    fn name(&self) -> &'static str {
        "Cosine"
    }
}

impl Metric<Vec<f32>> for InnerProduct {
    #[inline]
    fn distance(&self, a: &Vec<f32>, b: &Vec<f32>) -> f32 {
        -kernel::dot(a, b)
    }
    fn name(&self) -> &'static str {
        "InnerProduct"
    }
}

impl Metric<SparseVec> for Jaccard {
    #[inline]
    fn distance(&self, a: &SparseVec, b: &SparseVec) -> f32 {
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        let inter = a.intersection_size(b);
        let union = a.len() + b.len() - inter;
        1.0 - inter as f32 / union as f32
    }
    fn name(&self) -> &'static str {
        "Jaccard"
    }
}

impl Metric<Vec<f32>> for L1 {
    #[inline]
    fn distance(&self, a: &Vec<f32>, b: &Vec<f32>) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        kernel::l1(a, b)
    }
    fn name(&self) -> &'static str {
        "L1"
    }
}

impl Metric<Vec<f32>> for Chebyshev {
    #[inline]
    fn distance(&self, a: &Vec<f32>, b: &Vec<f32>) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }
    fn name(&self) -> &'static str {
        "Chebyshev"
    }
}

impl Metric<Vec<u8>> for Hamming {
    #[inline]
    fn distance(&self, a: &Vec<u8>, b: &Vec<u8>) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        kernel::hamming_u8(a, b) as f32
    }
    fn name(&self) -> &'static str {
        "Hamming"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_basics() {
        let m = L2;
        assert_eq!(m.distance(&vec![0.0, 0.0], &vec![3.0, 4.0]), 5.0);
        assert_eq!(m.distance(&vec![1.0, 1.0], &vec![1.0, 1.0]), 0.0);
    }

    #[test]
    fn l2_u8_matches_f32() {
        let mu = L2;
        let mf = L2;
        let a8 = vec![0u8, 10, 200];
        let b8 = vec![5u8, 10, 100];
        let af: Vec<f32> = a8.iter().map(|&x| f32::from(x)).collect();
        let bf: Vec<f32> = b8.iter().map(|&x| f32::from(x)).collect();
        let du = Metric::<Vec<u8>>::distance(&mu, &a8, &b8);
        let df = Metric::<Vec<f32>>::distance(&mf, &af, &bf);
        assert!((du - df).abs() < 1e-4);
    }

    #[test]
    fn squared_l2_is_rank_equivalent_to_l2() {
        let a = vec![0.0f32, 0.0];
        let near = vec![1.0f32, 0.0];
        let far = vec![5.0f32, 5.0];
        assert!(SquaredL2.distance(&a, &near) < SquaredL2.distance(&a, &far));
        let d = Metric::<Vec<f32>>::distance(&L2, &a, &far);
        assert!((SquaredL2.distance(&a, &far) - d * d).abs() < 1e-4);
    }

    #[test]
    fn cosine_range_and_identity() {
        let m = Cosine;
        let a = vec![1.0f32, 0.0];
        let b = vec![0.0f32, 1.0];
        let c = vec![-1.0f32, 0.0];
        assert!((m.distance(&a, &a)).abs() < 1e-6);
        assert!((m.distance(&a, &b) - 1.0).abs() < 1e-6);
        assert!((m.distance(&a, &c) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vectors() {
        let m = Cosine;
        let z = vec![0.0f32, 0.0];
        let a = vec![1.0f32, 0.0];
        assert_eq!(m.distance(&z, &z), 0.0);
        assert_eq!(m.distance(&z, &a), 1.0);
        assert_eq!(m.distance(&a, &z), 1.0);
    }

    #[test]
    fn jaccard_basics() {
        let m = Jaccard;
        let a = SparseVec::new(vec![1, 2, 3]);
        let b = SparseVec::new(vec![2, 3, 4]);
        // |∩| = 2, |∪| = 4 → distance = 0.5
        assert!((m.distance(&a, &b) - 0.5).abs() < 1e-6);
        assert_eq!(m.distance(&a, &a), 0.0);
        let empty = SparseVec::default();
        assert_eq!(m.distance(&empty, &empty), 0.0);
        assert_eq!(m.distance(&a, &empty), 1.0);
    }

    #[test]
    fn hamming_counts_differing_bytes() {
        let m = Hamming;
        assert_eq!(m.distance(&vec![1u8, 2, 3], &vec![1u8, 9, 3]), 1.0);
        assert_eq!(m.distance(&vec![0u8; 4], &vec![1u8; 4]), 4.0);
    }

    #[test]
    fn inner_product_prefers_aligned() {
        let m = InnerProduct;
        let q = vec![1.0f32, 1.0];
        assert!(m.distance(&q, &vec![2.0, 2.0]) < m.distance(&q, &vec![0.1, 0.1]));
    }

    #[test]
    fn l1_and_chebyshev_basics() {
        let a = vec![0.0f32, 0.0];
        let b = vec![3.0f32, -4.0];
        assert_eq!(L1.distance(&a, &b), 7.0);
        assert_eq!(Chebyshev.distance(&a, &b), 4.0);
        assert_eq!(L1.distance(&a, &a), 0.0);
        assert_eq!(Chebyshev.distance(&b, &b), 0.0);
        // Minkowski ordering: L-inf <= L2 <= L1.
        let l2 = Metric::<Vec<f32>>::distance(&L2, &a, &b);
        assert!(Chebyshev.distance(&a, &b) <= l2);
        assert!(l2 <= L1.distance(&a, &b));
    }

    #[test]
    fn zero_length_vectors_are_identical_under_every_dense_metric() {
        let e: Vec<f32> = vec![];
        assert_eq!(Metric::<Vec<f32>>::distance(&L2, &e, &e), 0.0);
        assert_eq!(SquaredL2.distance(&e, &e), 0.0);
        // Zero-dimensional vectors are zero vectors: cosine's degenerate
        // branch applies.
        assert_eq!(Cosine.distance(&e, &e), 0.0);
        assert_eq!(InnerProduct.distance(&e, &e), 0.0);
        assert_eq!(L1.distance(&e, &e), 0.0);
        assert_eq!(Chebyshev.distance(&e, &e), 0.0);
        let eu: Vec<u8> = vec![];
        assert_eq!(Hamming.distance(&eu, &eu), 0.0);
        assert_eq!(Metric::<Vec<u8>>::distance(&L2, &eu, &eu), 0.0);
    }

    #[test]
    fn jaccard_disjoint_and_identical_sparse_sets() {
        let m = Jaccard;
        let a = SparseVec::new(vec![1, 3, 5, 7]);
        let disjoint = SparseVec::new(vec![2, 4, 6]);
        assert_eq!(m.distance(&a, &disjoint), 1.0);
        assert_eq!(m.distance(&disjoint, &a), 1.0);
        let identical = SparseVec::new(vec![1, 3, 5, 7]);
        assert_eq!(m.distance(&a, &identical), 0.0);
        // Subset: |∩| = 2, |∪| = 4 → 0.5.
        let subset = SparseVec::new(vec![3, 7]);
        assert!((m.distance(&a, &subset) - 0.5).abs() < 1e-6);
        assert_eq!(m.distance(&a, &subset), m.distance(&subset, &a));
    }

    #[test]
    fn chebyshev_and_hamming_symmetry() {
        let a = vec![0.5f32, -2.0, 3.25, 0.0, 9.5];
        let b = vec![-1.5f32, 4.0, 3.25, 2.0, -0.5];
        assert_eq!(Chebyshev.distance(&a, &b), Chebyshev.distance(&b, &a));
        assert_eq!(Chebyshev.distance(&a, &b), 10.0);
        let x = vec![0u8, 255, 17, 4];
        let y = vec![1u8, 255, 18, 4];
        assert_eq!(Hamming.distance(&x, &y), Hamming.distance(&y, &x));
        assert_eq!(Hamming.distance(&x, &y), 2.0);
        assert_eq!(L1.distance(&a, &b), L1.distance(&b, &a));
    }

    #[test]
    fn symmetry_across_metrics() {
        let a = vec![0.3f32, -1.2, 4.0];
        let b = vec![2.0f32, 0.0, -1.0];
        assert_eq!(
            Metric::<Vec<f32>>::distance(&L2, &a, &b),
            Metric::<Vec<f32>>::distance(&L2, &b, &a)
        );
        assert_eq!(Cosine.distance(&a, &b), Cosine.distance(&b, &a));
        assert_eq!(SquaredL2.distance(&a, &b), SquaredL2.distance(&b, &a));
    }
}
