//! Exact k-nearest-neighbor ground truth by brute force.
//!
//! The paper's Section 5.2 validates DNND's graphs against a brute-force
//! all-pairs computation on the six small datasets; Section 5.3 uses the
//! published query ground truth. Here both come from this module:
//! [`brute_force_knng`] builds the exact k-NNG over a base set (excluding
//! self-edges, as a k-NNG has no self loops), and [`brute_force_queries`]
//! answers held-out queries.
//!
//! Parallelized over queries with rayon — the same shared-memory
//! parallelism the paper's brute-force checker would use.

use crate::batch::{BatchMetric, NormCache};
use crate::order::OrdF32;
use crate::point::Point;
use crate::set::{PointId, PointSet};
use rayon::prelude::*;
use std::collections::BinaryHeap;

/// Candidate-block width for batched distance evaluation: big enough to
/// amortize the per-batch query-norm computation, small enough that the
/// distance buffer stays in cache.
const BLOCK: usize = 256;

/// Exact nearest neighbors: for query `q`, `ids[q]` are the `k` closest
/// base ids ascending by `(distance, id)`, and `dists[q]` the distances.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// Neighbor ids per query, closest first.
    pub ids: Vec<Vec<PointId>>,
    /// Distances per query, matching `ids`.
    pub dists: Vec<Vec<f32>>,
}

impl GroundTruth {
    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if no queries are covered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Neighbors of one query.
    pub fn neighbors(&self, q: usize) -> &[PointId] {
        &self.ids[q]
    }
}

/// Exact k nearest base points for one explicit query point. `exclude` is
/// the query's own id when the query is a member of `base` (k-NNG case).
fn knn_of<P: Point, M: BatchMetric<P>>(
    base: &PointSet<P>,
    metric: &M,
    cache: &NormCache,
    all_ids: &[PointId],
    q: &P,
    exclude: Option<PointId>,
    k: usize,
) -> (Vec<PointId>, Vec<f32>) {
    // Max-heap of the current k best so the worst is peekable. Distances
    // arrive a block at a time (1×BLOCK batched evaluation); selection
    // scans each block in id order, so results match a scalar sweep.
    let mut heap: BinaryHeap<(OrdF32, PointId)> = BinaryHeap::with_capacity(k + 1);
    let mut dbuf: Vec<f32> = Vec::with_capacity(BLOCK);
    for block in all_ids.chunks(BLOCK) {
        metric.distance_one_to_many(q, base, cache, block, &mut dbuf);
        for (&id, &d) in block.iter().zip(&dbuf) {
            if exclude == Some(id) {
                continue;
            }
            if heap.len() < k {
                heap.push((OrdF32(d), id));
            } else if let Some(&(worst, worst_id)) = heap.peek() {
                if (OrdF32(d), id) < (worst, worst_id) {
                    heap.pop();
                    heap.push((OrdF32(d), id));
                }
            }
        }
    }
    let mut pairs = heap.into_vec();
    pairs.sort_unstable();
    let ids = pairs.iter().map(|&(_, id)| id).collect();
    let dists = pairs.iter().map(|&(OrdF32(d), _)| d).collect();
    (ids, dists)
}

/// Exact k-NNG over `base` (no self edges). `O(N^2)` distances — the
/// baseline NN-Descent's `O(n^1.14)` empirical cost is measured against.
pub fn brute_force_knng<P: Point, M: BatchMetric<P>>(
    base: &PointSet<P>,
    metric: &M,
    k: usize,
) -> GroundTruth {
    assert!(k < base.len(), "k must be smaller than the dataset");
    let cache = metric.preprocess(base);
    let all_ids: Vec<PointId> = (0..base.len() as PointId).collect();
    let results: Vec<(Vec<PointId>, Vec<f32>)> = (0..base.len() as PointId)
        .into_par_iter()
        .map(|id| knn_of(base, metric, &cache, &all_ids, base.point(id), Some(id), k))
        .collect();
    let (ids, dists) = results.into_iter().unzip();
    GroundTruth { ids, dists }
}

/// Exact k nearest base neighbors for each held-out query.
pub fn brute_force_queries<P: Point, M: BatchMetric<P>>(
    base: &PointSet<P>,
    queries: &PointSet<P>,
    metric: &M,
    k: usize,
) -> GroundTruth {
    assert!(k <= base.len(), "k must not exceed the dataset size");
    let cache = metric.preprocess(base);
    let all_ids: Vec<PointId> = (0..base.len() as PointId).collect();
    let results: Vec<(Vec<PointId>, Vec<f32>)> = queries
        .points()
        .par_iter()
        .map(|q| knn_of(base, metric, &cache, &all_ids, q, None, k))
        .collect();
    let (ids, dists) = results.into_iter().unzip();
    GroundTruth { ids, dists }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::L2;
    use crate::synth::uniform;

    /// A tiny hand-checkable line of points at x = 0, 1, 2, 3, 4.
    fn line() -> PointSet<Vec<f32>> {
        PointSet::new((0..5).map(|i| vec![i as f32]).collect())
    }

    #[test]
    fn knng_on_a_line() {
        let gt = brute_force_knng(&line(), &L2, 2);
        // Point 0's nearest two are 1 then 2.
        assert_eq!(gt.neighbors(0), &[1, 2]);
        // Point 2's nearest are 1 and 3 (tie distance 1.0, id ascending).
        assert_eq!(gt.neighbors(2), &[1, 3]);
        assert_eq!(gt.dists[2], vec![1.0, 1.0]);
        // No self edges anywhere.
        for (q, ids) in gt.ids.iter().enumerate() {
            assert!(!ids.contains(&(q as PointId)));
        }
    }

    #[test]
    fn queries_on_a_line() {
        let base = line();
        let queries = PointSet::new(vec![vec![1.9f32], vec![-10.0]]);
        let gt = brute_force_queries(&base, &queries, &L2, 3);
        assert_eq!(gt.neighbors(0), &[2, 1, 3]);
        assert_eq!(gt.neighbors(1), &[0, 1, 2]);
        assert_eq!(gt.dists[1][0], 10.0);
    }

    #[test]
    fn results_sorted_ascending_by_distance() {
        let base = uniform(200, 4, 77);
        let gt = brute_force_knng(&base, &L2, 10);
        for d in &gt.dists {
            assert!(d.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(d.len(), 10);
        }
    }

    #[test]
    fn query_membership_includes_identical_point() {
        // A query identical to a base point finds it at distance 0.
        let base = line();
        let queries = PointSet::new(vec![vec![3.0f32]]);
        let gt = brute_force_queries(&base, &queries, &L2, 1);
        assert_eq!(gt.neighbors(0), &[3]);
        assert_eq!(gt.dists[0], vec![0.0]);
    }

    #[test]
    fn deterministic_under_parallelism() {
        let base = uniform(300, 8, 5);
        let a = brute_force_knng(&base, &L2, 5);
        let b = brute_force_knng(&base, &L2, 5);
        assert_eq!(a, b);
    }
}
