//! [`PointSet`]: an indexed collection of points — the dataset `V` of the
//! paper, with `N = |V|` entries.
//!
//! Point ids are `u32` throughout, matching the paper's choice of 4-byte
//! point ids for the billion-scale runs (Section 5.3). Dense sets persist to
//! a [`metall::Store`] as a flat element buffer plus a header; sparse sets
//! as an offsets + items pair (CSR-style).

use crate::point::{Point, SparseVec};
use metall::{Result as StoreResult, Store, StoreError};

/// Vertex/point identifier, 4 bytes as in the paper's evaluation.
pub type PointId = u32;

/// An in-memory dataset of points with stable `u32` ids.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet<P> {
    points: Vec<P>,
    dim: usize,
}

impl<P: Point> PointSet<P> {
    /// Build from points. For dense sets all points must share a dimension.
    pub fn new(points: Vec<P>) -> Self {
        let dim = points.first().map_or(0, Point::dim);
        PointSet { points, dim }
    }

    /// Number of points (`N`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the set holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality of the first point (dense sets: the common dimension;
    /// sparse sets: a representative size only).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The point with id `id`.
    #[inline]
    pub fn point(&self, id: PointId) -> &P {
        &self.points[id as usize]
    }

    /// All points, id order.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Iterate `(id, point)`.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &P)> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| (i as PointId, p))
    }

    /// Total storage bytes (the paper's `N x dim x E`).
    pub fn storage_bytes(&self) -> usize {
        self.points.iter().map(Point::storage_bytes).sum()
    }

    /// Split ownership of the ids among `n_ranks` by the given partitioner;
    /// returns for each rank the list of ids it owns. Used by tests and by
    /// the distributed loader.
    pub fn partition_ids(
        &self,
        n_ranks: usize,
        owner: impl Fn(PointId) -> usize,
    ) -> Vec<Vec<PointId>> {
        let mut out = vec![Vec::new(); n_ranks];
        for id in 0..self.len() as PointId {
            out[owner(id)].push(id);
        }
        out
    }
}

/// Names used for the store layout of a persisted point set.
fn key(prefix: &str, field: &str) -> String {
    format!("{prefix}/{field}")
}

/// Dense f32 persistence: `<prefix>/meta` = [n, dim], `<prefix>/data` = flat.
impl PointSet<Vec<f32>> {
    /// Persist into `store` under `prefix`.
    pub fn save(&self, store: &mut Store, prefix: &str) -> StoreResult<()> {
        let meta = vec![self.len() as u64, self.dim as u64];
        let mut flat = Vec::with_capacity(self.len() * self.dim);
        for p in &self.points {
            flat.extend_from_slice(p);
        }
        store.put(&key(prefix, "meta"), &meta)?;
        store.put(&key(prefix, "data"), &flat)
    }

    /// Load a set persisted by [`PointSet::save`].
    pub fn load(store: &Store, prefix: &str) -> StoreResult<Self> {
        let meta: Vec<u64> = store.get(&key(prefix, "meta"))?;
        let [n, dim] = meta[..] else {
            return Err(StoreError::Decode("bad point-set meta".into()));
        };
        let flat: Vec<f32> = store.get(&key(prefix, "data"))?;
        if flat.len() != (n * dim) as usize {
            return Err(StoreError::Decode("point-set data length mismatch".into()));
        }
        let points = flat
            .chunks_exact(dim as usize)
            .map(<[f32]>::to_vec)
            .collect();
        Ok(PointSet::new(points))
    }
}

/// Dense u8 persistence.
impl PointSet<Vec<u8>> {
    /// Persist into `store` under `prefix`.
    pub fn save(&self, store: &mut Store, prefix: &str) -> StoreResult<()> {
        let meta = vec![self.len() as u64, self.dim as u64];
        let mut flat = Vec::with_capacity(self.len() * self.dim);
        for p in &self.points {
            flat.extend_from_slice(p);
        }
        store.put(&key(prefix, "meta"), &meta)?;
        store.put(&key(prefix, "data"), &flat)
    }

    /// Load a set persisted by [`PointSet::save`].
    pub fn load(store: &Store, prefix: &str) -> StoreResult<Self> {
        let meta: Vec<u64> = store.get(&key(prefix, "meta"))?;
        let [n, dim] = meta[..] else {
            return Err(StoreError::Decode("bad point-set meta".into()));
        };
        let flat: Vec<u8> = store.get(&key(prefix, "data"))?;
        if flat.len() != (n * dim) as usize {
            return Err(StoreError::Decode("point-set data length mismatch".into()));
        }
        let points = flat
            .chunks_exact(dim as usize)
            .map(<[u8]>::to_vec)
            .collect();
        Ok(PointSet::new(points))
    }
}

/// Sparse persistence: CSR-style offsets + item buffer.
impl PointSet<SparseVec> {
    /// Persist into `store` under `prefix`.
    pub fn save(&self, store: &mut Store, prefix: &str) -> StoreResult<()> {
        let mut offsets: Vec<u64> = Vec::with_capacity(self.len() + 1);
        let mut items: Vec<u32> = Vec::new();
        offsets.push(0);
        for p in &self.points {
            items.extend_from_slice(p.ids());
            offsets.push(items.len() as u64);
        }
        store.put(&key(prefix, "offsets"), &offsets)?;
        store.put(&key(prefix, "items"), &items)
    }

    /// Load a set persisted by [`PointSet::save`].
    pub fn load(store: &Store, prefix: &str) -> StoreResult<Self> {
        let offsets: Vec<u64> = store.get(&key(prefix, "offsets"))?;
        let items: Vec<u32> = store.get(&key(prefix, "items"))?;
        if offsets.first() != Some(&0) || offsets.last().copied() != Some(items.len() as u64) {
            return Err(StoreError::Decode("bad sparse offsets".into()));
        }
        let points = offsets
            .windows(2)
            .map(|w| {
                if w[0] > w[1] {
                    Err(StoreError::Decode("non-monotone sparse offsets".into()))
                } else {
                    Ok(SparseVec::from_sorted(
                        items[w[0] as usize..w[1] as usize].to_vec(),
                    ))
                }
            })
            .collect::<StoreResult<Vec<_>>>()?;
        Ok(PointSet::new(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dataset-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn basic_accessors() {
        let s = PointSet::new(vec![vec![1.0f32, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.point(1), &vec![3.0, 4.0]);
        assert_eq!(s.storage_bytes(), 3 * 2 * 4);
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn partition_covers_all_ids_exactly_once() {
        let s = PointSet::new(vec![vec![0.0f32]; 10]);
        let parts = s.partition_ids(3, |id| (id as usize) % 3);
        let mut all: Vec<u32> = parts.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<u32>>());
        assert_eq!(parts[0], vec![0, 3, 6, 9]);
    }

    #[test]
    fn f32_save_load_round_trip() {
        let dir = tmpdir("f32");
        let mut store = Store::create(&dir).unwrap();
        let s = PointSet::new(vec![vec![1.0f32, 2.0], vec![-3.5, 4.25]]);
        s.save(&mut store, "ds").unwrap();
        let back = PointSet::<Vec<f32>>::load(&store, "ds").unwrap();
        assert_eq!(back, s);
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn u8_save_load_round_trip() {
        let dir = tmpdir("u8");
        let mut store = Store::create(&dir).unwrap();
        let s = PointSet::new(vec![vec![1u8, 2, 3], vec![200, 100, 0]]);
        s.save(&mut store, "bigann").unwrap();
        let back = PointSet::<Vec<u8>>::load(&store, "bigann").unwrap();
        assert_eq!(back, s);
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn sparse_save_load_round_trip() {
        let dir = tmpdir("sparse");
        let mut store = Store::create(&dir).unwrap();
        let s = PointSet::new(vec![
            SparseVec::new(vec![1, 5, 9]),
            SparseVec::default(),
            SparseVec::new(vec![2]),
        ]);
        s.save(&mut store, "kosarak").unwrap();
        let back = PointSet::<SparseVec>::load(&store, "kosarak").unwrap();
        assert_eq!(back, s);
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn load_detects_length_mismatch() {
        let dir = tmpdir("mismatch");
        let mut store = Store::create(&dir).unwrap();
        store.put("bad/meta", &vec![2u64, 3u64]).unwrap();
        store.put("bad/data", &vec![1.0f32; 5]).unwrap(); // should be 6
        assert!(PointSet::<Vec<f32>>::load(&store, "bad").is_err());
        Store::destroy(&dir).unwrap();
    }
}
