//! Recall scoring.
//!
//! The paper's quality measure everywhere: "the recall score is the ratio of
//! the neighbor IDs that exist in the corresponding ground truth data"
//! (Section 5.2 for graphs, Section 5.3.3 as recall@10 for queries). The
//! mean over all points/queries is reported.

use crate::ground_truth::GroundTruth;
use crate::set::PointId;

/// Recall of one result list against one truth list: `|approx ∩ truth| /
/// |truth|`. An empty truth list scores 1.0 (nothing to find).
pub fn recall_single(approx: &[PointId], truth: &[PointId]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let truth_set: std::collections::HashSet<PointId> = truth.iter().copied().collect();
    let hit = approx.iter().filter(|id| truth_set.contains(id)).count();
    hit as f64 / truth.len() as f64
}

/// Mean recall over all queries. `approx[q]` is compared against the first
/// `at` entries of `truth.ids[q]` (recall@`at`); pass `truth.ids[q].len()`
/// sized lists and `at = k` for graph recall.
pub fn mean_recall_at(approx: &[Vec<PointId>], truth: &GroundTruth, at: usize) -> f64 {
    assert_eq!(
        approx.len(),
        truth.len(),
        "approx and truth must cover the same queries"
    );
    if approx.is_empty() {
        return 1.0;
    }
    let sum: f64 = approx
        .iter()
        .zip(&truth.ids)
        .map(|(a, t)| recall_single(a, &t[..at.min(t.len())]))
        .sum();
    sum / approx.len() as f64
}

/// Mean recall with `at` = full truth depth.
pub fn mean_recall(approx: &[Vec<PointId>], truth: &GroundTruth) -> f64 {
    mean_recall_at(approx, truth, usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_recall_counts_hits() {
        assert_eq!(recall_single(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(recall_single(&[1, 9, 8], &[1, 2, 3]), 1.0 / 3.0);
        assert_eq!(recall_single(&[9, 8, 7], &[1, 2, 3]), 0.0);
        assert_eq!(recall_single(&[], &[1]), 0.0);
        assert_eq!(recall_single(&[5], &[]), 1.0);
    }

    #[test]
    fn order_does_not_matter() {
        assert_eq!(recall_single(&[3, 1, 2], &[1, 2, 3]), 1.0);
    }

    #[test]
    fn extra_entries_do_not_hurt() {
        // Searching l > k neighbors and scoring against k truths is legal.
        assert_eq!(recall_single(&[1, 2, 3, 9, 8], &[1, 2, 3]), 1.0);
    }

    #[test]
    fn mean_recall_at_truncates_truth() {
        let truth = GroundTruth {
            ids: vec![vec![1, 2, 3, 4]],
            dists: vec![vec![0.1, 0.2, 0.3, 0.4]],
        };
        // approx found the top-2 exactly: recall@2 = 1.0, recall@4 = 0.5.
        let approx = vec![vec![1, 2]];
        assert_eq!(mean_recall_at(&approx, &truth, 2), 1.0);
        assert_eq!(mean_recall_at(&approx, &truth, 4), 0.5);
    }

    #[test]
    fn mean_over_queries() {
        let truth = GroundTruth {
            ids: vec![vec![1], vec![2]],
            dists: vec![vec![0.0], vec![0.0]],
        };
        let approx = vec![vec![1], vec![9]];
        assert_eq!(mean_recall(&approx, &truth), 0.5);
    }

    #[test]
    #[should_panic(expected = "same queries")]
    fn mismatched_lengths_panic() {
        let truth = GroundTruth {
            ids: vec![vec![1]],
            dists: vec![vec![0.0]],
        };
        mean_recall(&[], &truth);
    }
}
