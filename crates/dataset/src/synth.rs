//! Synthetic dataset generators.
//!
//! We do not have the ANN-Benchmarks / Big-ANN files in this environment, so
//! each paper dataset is replaced by a *same-shape* synthetic stand-in (see
//! `DESIGN.md`). The primary generator is a clustered Gaussian mixture:
//! real embedding datasets (GloVe, DEEP, SIFT-like) exhibit cluster
//! structure and moderate local intrinsic dimension, which is what
//! NN-Descent's "my neighbors' neighbors are my neighbors" heuristic
//! exploits; i.i.d. uniform data would be an adversarially structureless
//! (and unrealistic) input.
//!
//! All generators are deterministic in their seed (ChaCha8).

use crate::point::SparseVec;
use crate::set::PointSet;
use rand::distributions::Distribution;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Standard normal sampling via Box–Muller, avoiding a dependency on
/// `rand_distr` (not on the approved crate list).
struct StdNormal;

impl Distribution<f32> for StdNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Box–Muller transform; u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }
}

/// Parameters for the Gaussian-mixture generator.
#[derive(Debug, Clone, Copy)]
pub struct MixtureParams {
    /// Number of points to generate.
    pub n: usize,
    /// Vector dimensionality.
    pub dim: usize,
    /// Number of mixture components (cluster centers).
    pub n_clusters: usize,
    /// Standard deviation of cluster centers around the origin.
    pub center_spread: f32,
    /// Standard deviation of points around their center.
    pub cluster_std: f32,
}

impl MixtureParams {
    /// A reasonable default shape for an embedding-like dataset.
    pub fn embedding_like(n: usize, dim: usize) -> Self {
        MixtureParams {
            n,
            dim,
            n_clusters: (n / 256).clamp(4, 256),
            center_spread: 10.0,
            cluster_std: 1.0,
        }
    }
}

/// Clustered Gaussian-mixture dense f32 dataset.
pub fn gaussian_mixture(params: MixtureParams, seed: u64) -> PointSet<Vec<f32>> {
    assert!(params.n_clusters >= 1 && params.dim >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let normal = StdNormal;
    let centers: Vec<Vec<f32>> = (0..params.n_clusters)
        .map(|_| {
            (0..params.dim)
                .map(|_| normal.sample(&mut rng) * params.center_spread)
                .collect()
        })
        .collect();
    let points = (0..params.n)
        .map(|_| {
            let c = &centers[rng.gen_range(0..params.n_clusters)];
            c.iter()
                .map(|&x| x + normal.sample(&mut rng) * params.cluster_std)
                .collect()
        })
        .collect();
    PointSet::new(points)
}

/// Quantize an f32 dataset to u8 (BigANN-style byte vectors): affine map of
/// the global [min, max] range onto [0, 255].
pub fn quantize_u8(set: &PointSet<Vec<f32>>) -> PointSet<Vec<u8>> {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for (_, p) in set.iter() {
        for &x in p {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    let scale = if hi > lo { 255.0 / (hi - lo) } else { 0.0 };
    let points = set
        .points()
        .iter()
        .map(|p| {
            p.iter()
                .map(|&x| ((x - lo) * scale).round().clamp(0.0, 255.0) as u8)
                .collect()
        })
        .collect();
    PointSet::new(points)
}

/// Clustered u8 dataset (convenience: mixture then quantize).
pub fn gaussian_mixture_u8(params: MixtureParams, seed: u64) -> PointSet<Vec<u8>> {
    quantize_u8(&gaussian_mixture(params, seed))
}

/// L2-normalize every vector in place — cosine-metric datasets (GloVe,
/// NYTimes, Last.fm) are customarily unit vectors.
pub fn normalize(set: &mut PointSet<Vec<f32>>) {
    let points: Vec<Vec<f32>> = set
        .points()
        .iter()
        .map(|p| {
            let n = crate::point::dense::norm(p);
            if n > 0.0 {
                p.iter().map(|x| x / n).collect()
            } else {
                p.clone()
            }
        })
        .collect();
    *set = PointSet::new(points);
}

/// Parameters for the sparse power-law set generator (Kosarak-like
/// click-stream data under Jaccard similarity).
#[derive(Debug, Clone, Copy)]
pub struct SparseParams {
    /// Number of points (transactions).
    pub n: usize,
    /// Universe of item ids.
    pub universe: u32,
    /// Mean set size.
    pub mean_len: usize,
    /// Zipf-like skew exponent for item popularity (larger = more skewed).
    pub skew: f64,
}

impl SparseParams {
    /// Kosarak-ish defaults at a reduced universe.
    pub fn kosarak_like(n: usize) -> Self {
        SparseParams {
            n,
            universe: 27_983, // Kosarak's dimensionality from Table 1
            mean_len: 12,
            skew: 1.05,
        }
    }
}

/// Generate sparse sets with Zipf-distributed item popularity. Sets whose
/// sampled length is zero are bumped to one item so Jaccard is defined.
pub fn sparse_powerlaw(params: SparseParams, seed: u64) -> PointSet<SparseVec> {
    assert!(params.universe >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Inverse-CDF sampling over a truncated Zipf: precompute cumulative
    // weights once (universe is modest).
    let weights: Vec<f64> = (1..=params.universe as u64)
        .map(|r| 1.0 / (r as f64).powf(params.skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let sample_item = |rng: &mut ChaCha8Rng| -> u32 {
        let u: f64 = rng.gen();
        match cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i as u32).min(params.universe - 1),
        }
    };
    let points = (0..params.n)
        .map(|_| {
            // Geometric-ish length distribution around the mean.
            let len = 1 + rng.gen_range(0..params.mean_len.max(1) * 2);
            let ids: Vec<u32> = (0..len).map(|_| sample_item(&mut rng)).collect();
            SparseVec::new(ids)
        })
        .collect();
    PointSet::new(points)
}

/// Uniform dense data in `[0, 1)^dim` — the structureless control used by
/// some tests and ablations.
pub fn uniform(n: usize, dim: usize, seed: u64) -> PointSet<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    PointSet::new(
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>()).collect())
            .collect(),
    )
}

/// Split a generated set into (base, queries): the last `n_queries` points
/// become the query set, mirroring ANN-Benchmarks' held-out query files.
pub fn split_queries<P: crate::point::Point>(
    set: PointSet<P>,
    n_queries: usize,
) -> (PointSet<P>, PointSet<P>) {
    assert!(n_queries < set.len(), "cannot hold out the whole dataset");
    let mut points = set.points().to_vec();
    let queries = points.split_off(points.len() - n_queries);
    (PointSet::new(points), PointSet::new(queries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{Cosine, Metric};

    #[test]
    fn mixture_is_deterministic_in_seed() {
        let p = MixtureParams::embedding_like(100, 8);
        let a = gaussian_mixture(p, 42);
        let b = gaussian_mixture(p, 42);
        let c = gaussian_mixture(p, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mixture_has_requested_shape() {
        let p = MixtureParams {
            n: 50,
            dim: 16,
            n_clusters: 4,
            center_spread: 5.0,
            cluster_std: 0.5,
        };
        let s = gaussian_mixture(p, 1);
        assert_eq!(s.len(), 50);
        assert_eq!(s.dim(), 16);
        assert!(s.points().iter().all(|v| v.len() == 16));
    }

    #[test]
    fn mixture_is_clustered_not_uniform() {
        // With tight clusters, the nearest neighbor of a point should be far
        // closer than a random pair on average.
        let p = MixtureParams {
            n: 200,
            dim: 8,
            n_clusters: 8,
            center_spread: 20.0,
            cluster_std: 0.1,
        };
        let s = gaussian_mixture(p, 7);
        let m = crate::metric::L2;
        let d01 = Metric::<Vec<f32>>::distance(&m, s.point(0), s.point(1));
        let min_d: f32 = (1..s.len() as u32)
            .map(|j| Metric::<Vec<f32>>::distance(&m, s.point(0), s.point(j)))
            .fold(f32::INFINITY, f32::min);
        assert!(min_d < d01.max(1.0) * 0.9 || min_d < 1.0);
    }

    #[test]
    fn quantize_u8_covers_range() {
        let s = PointSet::new(vec![vec![0.0f32, 1.0], vec![0.5, 0.25]]);
        let q = quantize_u8(&s);
        let flat: Vec<u8> = q.points().concat();
        assert!(flat.contains(&0));
        assert!(flat.contains(&255));
        assert_eq!(q.dim(), 2);
    }

    #[test]
    fn quantize_constant_input_is_zero() {
        let s = PointSet::new(vec![vec![3.0f32; 4]; 3]);
        let q = quantize_u8(&s);
        assert!(q.points().iter().all(|p| p.iter().all(|&b| b == 0)));
    }

    #[test]
    fn normalize_produces_unit_vectors() {
        let mut s = gaussian_mixture(MixtureParams::embedding_like(50, 25), 3);
        normalize(&mut s);
        for (_, p) in s.iter() {
            let n = crate::point::dense::norm(p);
            assert!((n - 1.0).abs() < 1e-4, "norm was {n}");
        }
        // Cosine self-distance of normalized vectors is ~0.
        assert!(Cosine.distance(s.point(0), s.point(0)).abs() < 1e-5);
    }

    #[test]
    fn sparse_sets_are_nonempty_and_in_universe() {
        let p = SparseParams::kosarak_like(200);
        let s = sparse_powerlaw(p, 5);
        assert_eq!(s.len(), 200);
        for (_, v) in s.iter() {
            assert!(!v.is_empty());
            assert!(v.ids().iter().all(|&i| i < p.universe));
        }
    }

    #[test]
    fn sparse_popularity_is_skewed() {
        let s = sparse_powerlaw(SparseParams::kosarak_like(500), 11);
        let mut counts = std::collections::HashMap::<u32, usize>::new();
        for (_, v) in s.iter() {
            for &i in v.ids() {
                *counts.entry(i).or_default() += 1;
            }
        }
        // Item 0 (most popular under Zipf) should appear far more often than
        // a mid-universe item.
        let head = counts.get(&0).copied().unwrap_or(0);
        let tail = counts.get(&20_000).copied().unwrap_or(0);
        assert!(head > tail, "head={head} tail={tail}");
    }

    #[test]
    fn split_queries_partitions() {
        let s = uniform(100, 4, 9);
        let (base, queries) = split_queries(s.clone(), 10);
        assert_eq!(base.len(), 90);
        assert_eq!(queries.len(), 10);
        assert_eq!(base.point(0), s.point(0));
        assert_eq!(queries.point(0), s.point(90));
    }

    #[test]
    fn uniform_in_unit_cube() {
        let s = uniform(64, 3, 123);
        for (_, p) in s.iter() {
            assert!(p.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }
}
