//! Total ordering for `f32` distances.
//!
//! Distances are non-negative reals, but `f32` is not `Ord`. [`OrdF32`]
//! imposes the IEEE total order via `total_cmp`, which all heaps, ground
//! truth selection, and neighbor lists in this workspace rely on. Ties are
//! broken by the caller (conventionally by point id) to keep results
//! deterministic.

use std::cmp::Ordering;

/// An `f32` wrapper with total ordering (`f32::total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OrdF32(pub f32);

impl Eq for OrdF32 {}

impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f32> for OrdF32 {
    fn from(v: f32) -> Self {
        OrdF32(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_ordinary_values() {
        assert!(OrdF32(1.0) < OrdF32(2.0));
        assert!(OrdF32(-1.0) < OrdF32(0.0));
        assert_eq!(OrdF32(3.0), OrdF32(3.0));
    }

    #[test]
    fn handles_special_values_totally() {
        assert!(OrdF32(f32::NEG_INFINITY) < OrdF32(0.0));
        assert!(OrdF32(f32::INFINITY) > OrdF32(1e30));
        // total_cmp puts NaN above +inf; what matters is that comparison
        // never panics and is consistent.
        assert!(OrdF32(f32::NAN) > OrdF32(f32::INFINITY));
    }

    #[test]
    fn sortable_in_collections() {
        let mut v = vec![OrdF32(2.0), OrdF32(0.5), OrdF32(1.0)];
        v.sort();
        assert_eq!(v, vec![OrdF32(0.5), OrdF32(1.0), OrdF32(2.0)]);
        let max = v.iter().max().unwrap();
        assert_eq!(max.0, 2.0);
    }
}
