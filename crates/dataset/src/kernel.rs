//! Fixed-width batched distance kernels with a documented scalar reference.
//!
//! Every floating-point reduction in this module accumulates into **eight
//! independent lanes** (`LANES = 8`) and then folds the lanes together in
//! lane order `0, 1, .., 7`, followed by the tail elements in index order.
//! That accumulation order is the *determinism contract*: the runtime-
//! dispatched SIMD paths reproduce it exactly (vertical `mul` + `add` per
//! 8-wide chunk, then a sequential horizontal fold), so every dispatch path
//! is **bit-identical** to [`dot_scalar`] / [`l1_scalar`]. FMA is never
//! used — a fused multiply-add rounds once where `mul`+`add` rounds twice,
//! which would break the bit-identity guarantee between paths.
//!
//! Derived quantities (`||a-b||² = ||a||² + ||b||² − 2a·b`, cosine) are
//! built from these primitives via the shared combiners below so that a
//! cached-norm evaluation and a from-scratch evaluation follow the exact
//! same arithmetic and produce the same bits.

use std::sync::atomic::{AtomicU8, Ordering};

/// Accumulation width of the scalar reference (and SIMD chunk width).
pub const LANES: usize = 8;

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Which kernel implementation services f32 reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Portable 8-lane scalar reference (always available).
    Scalar,
    /// AVX2 256-bit path (x86-64 only, bit-identical to `Scalar`).
    Avx2,
}

impl Dispatch {
    /// Stable lowercase name, used in bench reports.
    pub fn name(self) -> &'static str {
        match self {
            Dispatch::Scalar => "scalar",
            Dispatch::Avx2 => "avx2",
        }
    }
}

const DISPATCH_UNSET: u8 = 0;
const DISPATCH_SCALAR: u8 = 1;
const DISPATCH_AVX2: u8 = 2;

static DISPATCH: AtomicU8 = AtomicU8::new(DISPATCH_UNSET);

fn detect() -> u8 {
    if std::env::var("DNND_KERNEL").as_deref() == Ok("scalar") {
        return DISPATCH_SCALAR;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return DISPATCH_AVX2;
        }
    }
    DISPATCH_SCALAR
}

/// The dispatch path currently in effect (detected once, then cached).
pub fn dispatch() -> Dispatch {
    let mut d = DISPATCH.load(Ordering::Relaxed);
    if d == DISPATCH_UNSET {
        d = detect();
        DISPATCH.store(d, Ordering::Relaxed);
    }
    match d {
        DISPATCH_AVX2 => Dispatch::Avx2,
        _ => Dispatch::Scalar,
    }
}

/// Force a dispatch path (tests/benches), or `None` to re-detect.
/// Process-global; callers that race only ever observe one of the two
/// bit-identical paths, so results are unaffected.
pub fn force_dispatch(d: Option<Dispatch>) {
    let v = match d {
        None => DISPATCH_UNSET,
        Some(Dispatch::Scalar) => DISPATCH_SCALAR,
        Some(Dispatch::Avx2) => DISPATCH_AVX2,
    };
    DISPATCH.store(v, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Scalar reference kernels (the definition of "correct bits")
// ---------------------------------------------------------------------------

/// Scalar reference dot product: 8 independent lane accumulators over
/// full chunks (`acc[j] += a[j] * b[j]`), folded `acc[0] + acc[1] + ..
/// + acc[7]`, then tail elements added in index order.
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let chunks = n / LANES;
    let mut acc = [0.0f32; LANES];
    for c in 0..chunks {
        let base = c * LANES;
        for j in 0..LANES {
            acc[j] += a[base + j] * b[base + j];
        }
    }
    let mut s = acc[0];
    for lane in acc.iter().take(LANES).skip(1) {
        s += *lane;
    }
    for i in chunks * LANES..n {
        s += a[i] * b[i];
    }
    s
}

/// Scalar reference L1 (Manhattan) distance with the same 8-lane
/// accumulation order as [`dot_scalar`].
pub fn l1_scalar(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let chunks = n / LANES;
    let mut acc = [0.0f32; LANES];
    for c in 0..chunks {
        let base = c * LANES;
        for j in 0..LANES {
            acc[j] += (a[base + j] - b[base + j]).abs();
        }
    }
    let mut s = acc[0];
    for lane in acc.iter().take(LANES).skip(1) {
        s += *lane;
    }
    for i in chunks * LANES..n {
        s += (a[i] - b[i]).abs();
    }
    s
}

// ---------------------------------------------------------------------------
// AVX2 kernels — bit-identical twins of the scalar reference
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::LANES;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Fold a 256-bit accumulator in lane order 0..7, matching the scalar
    /// reference fold exactly.
    #[target_feature(enable = "avx2")]
    unsafe fn fold_lanes(acc: __m256) -> f32 {
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut s = lanes[0];
        for lane in lanes.iter().take(LANES).skip(1) {
            s += *lane;
        }
        s
    }

    /// AVX2 dot product. Uses `mul` then `add` (never FMA) so each lane
    /// performs the same two roundings as the scalar reference.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let chunks = n / LANES;
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let base = c * LANES;
            let va = _mm256_loadu_ps(a.as_ptr().add(base));
            let vb = _mm256_loadu_ps(b.as_ptr().add(base));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        }
        let mut s = fold_lanes(acc);
        for i in chunks * LANES..n {
            s += a.get_unchecked(i) * b.get_unchecked(i);
        }
        s
    }

    /// AVX2 L1 distance; |x| via sign-bit mask, same rounding as scalar.
    #[target_feature(enable = "avx2")]
    pub unsafe fn l1(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let chunks = n / LANES;
        let sign_mask = _mm256_set1_ps(-0.0);
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let base = c * LANES;
            let va = _mm256_loadu_ps(a.as_ptr().add(base));
            let vb = _mm256_loadu_ps(b.as_ptr().add(base));
            let diff = _mm256_sub_ps(va, vb);
            acc = _mm256_add_ps(acc, _mm256_andnot_ps(sign_mask, diff));
        }
        let mut s = fold_lanes(acc);
        for i in chunks * LANES..n {
            s += (a.get_unchecked(i) - b.get_unchecked(i)).abs();
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Dispatched entry points
// ---------------------------------------------------------------------------

/// Dot product via the active dispatch path (bit-identical either way).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        if dispatch() == Dispatch::Avx2 {
            // Safety: dispatch() only returns Avx2 when the CPU has it.
            return unsafe { avx2::dot(a, b) };
        }
    }
    dot_scalar(a, b)
}

/// L1 distance via the active dispatch path (bit-identical either way).
#[inline]
pub fn l1(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        if dispatch() == Dispatch::Avx2 {
            // Safety: dispatch() only returns Avx2 when the CPU has it.
            return unsafe { avx2::l1(a, b) };
        }
    }
    l1_scalar(a, b)
}

/// Squared Euclidean norm `||v||² = v·v` (the cached-norm primitive).
#[inline]
pub fn norm_sq(v: &[f32]) -> f32 {
    dot(v, v)
}

// ---------------------------------------------------------------------------
// Shared combiners — one arithmetic for cached and uncached evaluation
// ---------------------------------------------------------------------------

/// `||a-b||²` from precomputed `||a||²`, `||b||²` and `a·b`. Clamped at
/// zero because catastrophic cancellation can produce a tiny negative
/// value, which would turn into NaN under a later `sqrt`.
#[inline]
pub fn sq_l2_from_dot(na_sq: f32, nb_sq: f32, dot_ab: f32) -> f32 {
    (na_sq + nb_sq - 2.0 * dot_ab).max(0.0)
}

/// Cosine distance `1 − cos(a, b)` from precomputed squared norms and the
/// dot product. Zero-vector convention matches `Metric`: two zero vectors
/// are identical (distance 0), one zero vector is maximally far (1).
#[inline]
pub fn cosine_from_dot(na_sq: f32, nb_sq: f32, dot_ab: f32) -> f32 {
    if na_sq == 0.0 || nb_sq == 0.0 {
        return if na_sq == nb_sq { 0.0 } else { 1.0 };
    }
    let cos = (dot_ab / (na_sq.sqrt() * nb_sq.sqrt())).clamp(-1.0, 1.0);
    1.0 - cos
}

/// Hamming distance over byte strings: count of positions whose bytes
/// differ (integer arithmetic, order-independent by construction).
#[inline]
pub fn hamming_u8(a: &[u8], b: &[u8]) -> u64 {
    let n = a.len().min(b.len());
    let mut count = 0u64;
    // Chunked to let the autovectorizer work; integer sums are exact, so
    // any evaluation order yields the same result.
    let chunks = n / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        for j in 0..LANES {
            count += u64::from(a[base + j] != b[base + j]);
        }
    }
    for i in chunks * LANES..n {
        count += u64::from(a[i] != b[i]);
    }
    count + (a.len().max(b.len()) - n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(seed: u64, n: usize) -> (Vec<f32>, Vec<f32>) {
        // Small deterministic LCG; values in [-1, 1).
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1 << 23) as f32) - 1.0
        };
        let a: Vec<f32> = (0..n).map(|_| next()).collect();
        let b: Vec<f32> = (0..n).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn scalar_dot_matches_exact_on_integers() {
        let a: Vec<f32> = (1..=20).map(|i| i as f32).collect();
        let b: Vec<f32> = (1..=20).map(|i| (21 - i) as f32).collect();
        let expect: f32 = (1..=20).map(|i| (i * (21 - i)) as f32).sum();
        assert_eq!(dot_scalar(&a, &b), expect);
    }

    #[test]
    fn avx2_bit_identical_to_scalar_when_available() {
        if dispatch() != Dispatch::Avx2 {
            return; // nothing to compare on this host
        }
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 100, 300, 960] {
            let (a, b) = vecs(n as u64 + 1, n);
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_scalar(&a, &b).to_bits(),
                "dot n={n}"
            );
            assert_eq!(
                l1(&a, &b).to_bits(),
                l1_scalar(&a, &b).to_bits(),
                "l1 n={n}"
            );
        }
    }

    #[test]
    fn force_dispatch_round_trips() {
        let before = dispatch();
        force_dispatch(Some(Dispatch::Scalar));
        assert_eq!(dispatch(), Dispatch::Scalar);
        force_dispatch(Some(before));
        assert_eq!(dispatch(), before);
    }

    #[test]
    fn combiners_are_sane() {
        let (a, b) = vecs(3, 64);
        let d = sq_l2_from_dot(norm_sq(&a), norm_sq(&b), dot(&a, &b));
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((d - naive).abs() <= 1e-4 * naive.max(1.0));
        // Cancellation clamp: identical vectors never go negative.
        let same = sq_l2_from_dot(norm_sq(&a), norm_sq(&a), dot(&a, &a));
        assert!(same >= 0.0);
        assert_eq!(cosine_from_dot(0.0, 0.0, 0.0), 0.0);
        assert_eq!(cosine_from_dot(0.0, 1.0, 0.0), 1.0);
        let self_cos = cosine_from_dot(norm_sq(&a), norm_sq(&a), dot(&a, &a));
        assert!((0.0..=1e-6).contains(&self_cos));
    }

    #[test]
    fn hamming_counts_and_length_mismatch() {
        assert_eq!(hamming_u8(&[1, 2, 3], &[1, 9, 3]), 1);
        assert_eq!(hamming_u8(&[], &[]), 0);
        assert_eq!(hamming_u8(&[1, 2], &[1, 2, 3, 4]), 2);
        let a: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let mut b = a.clone();
        b[17] ^= 0xff;
        b[63] ^= 0x01;
        assert_eq!(hamming_u8(&a, &b), 2);
    }
}
