//! # dataset — feature vectors, metrics, and benchmark data for k-NNG work
//!
//! Everything the DNND reproduction needs to feed NN-Descent:
//!
//! * [`point`] — dense `f32`/`u8` vectors and sparse sets, all wire-encodable
//!   for distributed neighbor checks.
//! * [`metric`] — L2, squared L2, cosine, inner product, Jaccard, Hamming;
//!   NN-Descent treats these as black boxes, which is the paper's stated
//!   reason for choosing the algorithm.
//! * [`set`] — [`PointSet`], the dataset `V` with `u32` point ids, plus
//!   persistence into a [`metall::Store`].
//! * [`synth`] / [`presets`] — deterministic synthetic stand-ins for the
//!   paper's eight evaluation datasets (Table 1), at caller-chosen scale.
//! * [`io`] — fvecs/bvecs/ivecs and Big-ANN fbin/u8bin readers and writers.
//! * [`ground_truth`] / [`recall`] — exact brute-force k-NN and the paper's
//!   recall scores.

pub mod analysis;
pub mod batch;
pub mod ground_truth;
pub mod io;
pub mod kernel;
pub mod metric;
pub mod order;
pub mod point;
pub mod presets;
pub mod recall;
pub mod set;
pub mod synth;

pub use analysis::{lid_mle, profile, DatasetProfile};
pub use batch::{BatchMetric, NormCache};
pub use ground_truth::{brute_force_knng, brute_force_queries, GroundTruth};
pub use metric::{Chebyshev, Cosine, Hamming, InnerProduct, Jaccard, Metric, SquaredL2, L1, L2};
pub use order::OrdF32;
pub use point::{Point, SparseVec};
pub use recall::{mean_recall, mean_recall_at, recall_single};
pub use set::{PointId, PointSet};
