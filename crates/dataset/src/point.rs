//! Point types: the feature-vector representations DNND operates on.
//!
//! The paper's datasets use three representations (Table 1):
//!
//! * dense `f32` vectors (DEEP-1B, GloVe, NYTimes, Last.fm, ...),
//! * dense `u8` vectors (BigANN) — half the wire size per dimension, which
//!   is why BigANN's message volume in Figure 4b is smaller,
//! * sparse sets of item ids (Kosarak, Jaccard similarity).
//!
//! All point types implement [`ygm::Wire`] so they can travel in Type 2 /
//! Type 2+ neighbor-check messages, and expose `storage_bytes` so data-size
//! accounting matches the paper's `N x dim x E` formula (Section 2).

use bytes::{Bytes, BytesMut};
use ygm::Wire;

/// A feature vector usable as a dataset point.
pub trait Point: Clone + Wire + Send + Sync + 'static {
    /// Number of dimensions (dense) or stored ids (sparse).
    fn dim(&self) -> usize;
    /// Bytes this point occupies in memory/storage (the paper's `dim x E`).
    fn storage_bytes(&self) -> usize;
}

impl Point for Vec<f32> {
    fn dim(&self) -> usize {
        self.len()
    }
    fn storage_bytes(&self) -> usize {
        self.len() * 4
    }
}

impl Point for Vec<u8> {
    fn dim(&self) -> usize {
        self.len()
    }
    fn storage_bytes(&self) -> usize {
        self.len()
    }
}

/// A sparse binary vector: the sorted, deduplicated set of present item ids.
/// Used for Jaccard-metric datasets such as Kosarak.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SparseVec {
    ids: Vec<u32>,
}

impl SparseVec {
    /// Build from arbitrary ids; sorts and deduplicates.
    pub fn new(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        SparseVec { ids }
    }

    /// Build from ids already sorted strictly ascending.
    ///
    /// # Panics
    /// In debug builds, panics if `ids` is not strictly ascending.
    pub fn from_sorted(ids: Vec<u32>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly ascending"
        );
        SparseVec { ids }
    }

    /// The sorted item ids.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of present items.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Size of the intersection with `other` (both sorted: linear merge).
    pub fn intersection_size(&self, other: &SparseVec) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        let (a, b) = (&self.ids, &other.ids);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

impl Wire for SparseVec {
    fn encode(&self, buf: &mut BytesMut) {
        self.ids.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Self {
        SparseVec {
            ids: Vec::<u32>::decode(buf),
        }
    }
    fn wire_size(&self) -> usize {
        self.ids.wire_size()
    }
}

impl Point for SparseVec {
    fn dim(&self) -> usize {
        self.ids.len()
    }
    fn storage_bytes(&self) -> usize {
        self.ids.len() * 4
    }
}

/// Dense vector helpers shared by metrics and generators.
///
/// The floating-point reductions delegate to [`crate::kernel`], the
/// runtime-dispatched 8-lane kernel module with a fixed accumulation
/// order (see its module docs for the determinism contract). Distance
/// evaluation is >95% of NN-Descent's CPU time, so that is the kernel
/// that matters; `sq_l2` survives here as the *direct-form* squared
/// distance (diff-then-square) used by generators and sanity tests —
/// the metrics themselves use the dot form via `kernel`.
pub mod dense {
    use crate::kernel;

    const LANES: usize = kernel::LANES;

    /// Euclidean norm of a dense f32 vector.
    pub fn norm(v: &[f32]) -> f32 {
        kernel::norm_sq(v).sqrt()
    }

    /// Direct-form squared Euclidean distance with 8-lane chunked
    /// accumulation. Numerically friendlier than the dot form for
    /// far-apart points, but NOT bit-identical to it — metrics use the
    /// dot form (`kernel::sq_l2_from_dot`) so cached norms stay exact.
    #[inline]
    pub fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = [0.0f32; LANES];
        let chunks = a.len() / LANES;
        for i in 0..chunks {
            for (lane, slot) in acc.iter_mut().enumerate() {
                let j = i * LANES + lane;
                let d = a[j] - b[j];
                *slot += d * d;
            }
        }
        let mut total = acc.iter().sum::<f32>();
        for j in chunks * LANES..a.len() {
            let d = a[j] - b[j];
            total += d * d;
        }
        total
    }

    /// Dot product (8-lane fixed-order accumulation, runtime-dispatched).
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        kernel::dot(a, b)
    }

    /// Squared L2 over u8 vectors, accumulating in i32 (exact) before one
    /// final float conversion — faster and more accurate than per-element
    /// float casts.
    #[inline]
    pub fn sq_l2_u8(a: &[u8], b: &[u8]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc: i64 = 0;
        for (x, y) in a.iter().zip(b) {
            let d = i32::from(*x) - i32::from(*y);
            acc += i64::from(d * d);
        }
        acc as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ygm::codec::{decode_from_bytes, encode_to_bytes};

    #[test]
    fn dense_point_dims_and_bytes() {
        let f = vec![1.0f32, 2.0, 3.0];
        assert_eq!(f.dim(), 3);
        assert_eq!(f.storage_bytes(), 12);
        let b = vec![1u8, 2, 3, 4];
        assert_eq!(b.dim(), 4);
        assert_eq!(b.storage_bytes(), 4);
    }

    #[test]
    fn sparse_new_sorts_and_dedups() {
        let s = SparseVec::new(vec![5, 1, 3, 1, 5]);
        assert_eq!(s.ids(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn sparse_intersection() {
        let a = SparseVec::new(vec![1, 2, 3, 10]);
        let b = SparseVec::new(vec![2, 3, 4]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(b.intersection_size(&a), 2);
        assert_eq!(a.intersection_size(&SparseVec::default()), 0);
    }

    #[test]
    fn sparse_wire_round_trip() {
        let s = SparseVec::new(vec![7, 3, 9]);
        let enc = encode_to_bytes(&s);
        assert_eq!(enc.len(), s.wire_size());
        let back: SparseVec = decode_from_bytes(enc);
        assert_eq!(back, s);
    }

    #[test]
    fn dense_helpers() {
        assert_eq!(dense::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((dense::norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(dense::sq_l2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dense::sq_l2_u8(&[0, 10], &[3, 6]), 25.0);
    }

    #[test]
    fn chunked_kernels_match_naive_on_odd_lengths() {
        // Lengths around the 4-lane boundary exercise the remainder loop.
        for len in [1usize, 3, 4, 5, 7, 8, 9, 96, 97] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32) * 0.37 - 3.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32) * -0.11 + 1.0).collect();
            let naive_sq: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            let naive_dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(
                (dense::sq_l2(&a, &b) - naive_sq).abs() < naive_sq.abs() * 1e-5 + 1e-5,
                "len {len}"
            );
            assert!(
                (dense::dot(&a, &b) - naive_dot).abs() < naive_dot.abs() * 1e-5 + 1e-5,
                "len {len}"
            );
        }
    }
}
