//! Readers/writers for the standard ANN benchmark binary formats.
//!
//! * `.fvecs` / `.bvecs` / `.ivecs` (ANN-Benchmarks, TEXMEX): each record is
//!   a little-endian `u32` dimension followed by `dim` elements.
//! * `.fbin` / `.u8bin` (Big ANN Benchmarks): a header of two `u32`s
//!   (`n`, `dim`) followed by `n * dim` elements, row-major.
//!
//! These make the harness runnable against the real DEEP/BigANN files when
//! they are available, while the synthetic presets stand in otherwise.

use crate::set::PointSet;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---- xvecs family ----------------------------------------------------------

/// Write a dense f32 set as `.fvecs`.
pub fn write_fvecs(path: impl AsRef<Path>, set: &PointSet<Vec<f32>>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for (_, p) in set.iter() {
        w.write_all(&(p.len() as u32).to_le_bytes())?;
        for &x in p {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read an `.fvecs` file.
pub fn read_fvecs(path: impl AsRef<Path>) -> io::Result<PointSet<Vec<f32>>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut points = Vec::new();
    loop {
        let dim = match read_u32(&mut r) {
            Ok(d) => d as usize,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        };
        let mut buf = vec![0u8; dim * 4];
        r.read_exact(&mut buf)?;
        let v: Vec<f32> = buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if let Some(first) = points.first() {
            let first: &Vec<f32> = first;
            if first.len() != v.len() {
                return Err(bad("inconsistent record dimension in fvecs"));
            }
        }
        points.push(v);
    }
    Ok(PointSet::new(points))
}

/// Write a dense u8 set as `.bvecs`.
pub fn write_bvecs(path: impl AsRef<Path>, set: &PointSet<Vec<u8>>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for (_, p) in set.iter() {
        w.write_all(&(p.len() as u32).to_le_bytes())?;
        w.write_all(p)?;
    }
    w.flush()
}

/// Read a `.bvecs` file.
pub fn read_bvecs(path: impl AsRef<Path>) -> io::Result<PointSet<Vec<u8>>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut points: Vec<Vec<u8>> = Vec::new();
    loop {
        let dim = match read_u32(&mut r) {
            Ok(d) => d as usize,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        };
        let mut buf = vec![0u8; dim];
        r.read_exact(&mut buf)?;
        if let Some(first) = points.first() {
            if first.len() != buf.len() {
                return Err(bad("inconsistent record dimension in bvecs"));
            }
        }
        points.push(buf);
    }
    Ok(PointSet::new(points))
}

/// Write ground-truth id lists as `.ivecs` (one record per query).
pub fn write_ivecs(path: impl AsRef<Path>, rows: &[Vec<u32>]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for row in rows {
        w.write_all(&(row.len() as u32).to_le_bytes())?;
        for &x in row {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read an `.ivecs` file.
pub fn read_ivecs(path: impl AsRef<Path>) -> io::Result<Vec<Vec<u32>>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut rows = Vec::new();
    loop {
        let dim = match read_u32(&mut r) {
            Ok(d) => d as usize,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        };
        let mut buf = vec![0u8; dim * 4];
        r.read_exact(&mut buf)?;
        rows.push(
            buf.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        );
    }
    Ok(rows)
}

// ---- big-ann bin family ----------------------------------------------------

/// Write a dense f32 set in Big-ANN `.fbin` layout.
pub fn write_fbin(path: impl AsRef<Path>, set: &PointSet<Vec<f32>>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&(set.len() as u32).to_le_bytes())?;
    w.write_all(&(set.dim() as u32).to_le_bytes())?;
    for (_, p) in set.iter() {
        for &x in p {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read a Big-ANN `.fbin` file.
pub fn read_fbin(path: impl AsRef<Path>) -> io::Result<PointSet<Vec<f32>>> {
    let mut r = BufReader::new(File::open(path)?);
    let n = read_u32(&mut r)? as usize;
    let dim = read_u32(&mut r)? as usize;
    let mut buf = vec![0u8; n * dim * 4];
    r.read_exact(&mut buf)?;
    let mut points = Vec::with_capacity(n);
    for row in buf.chunks_exact(dim * 4) {
        points.push(
            row.chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        );
    }
    Ok(PointSet::new(points))
}

/// Write a dense u8 set in Big-ANN `.u8bin` layout.
pub fn write_u8bin(path: impl AsRef<Path>, set: &PointSet<Vec<u8>>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&(set.len() as u32).to_le_bytes())?;
    w.write_all(&(set.dim() as u32).to_le_bytes())?;
    for (_, p) in set.iter() {
        w.write_all(p)?;
    }
    w.flush()
}

/// Read a Big-ANN `.u8bin` file.
pub fn read_u8bin(path: impl AsRef<Path>) -> io::Result<PointSet<Vec<u8>>> {
    let mut r = BufReader::new(File::open(path)?);
    let n = read_u32(&mut r)? as usize;
    let dim = read_u32(&mut r)? as usize;
    let mut buf = vec![0u8; n * dim];
    r.read_exact(&mut buf)?;
    let points = buf.chunks_exact(dim).map(<[u8]>::to_vec).collect();
    Ok(PointSet::new(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::uniform;
    use std::path::PathBuf;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dataset-io-{tag}-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn fvecs_round_trip() {
        let path = tmpfile("fvecs");
        let set = uniform(20, 7, 1);
        write_fvecs(&path, &set).unwrap();
        let back = read_fvecs(&path).unwrap();
        assert_eq!(back, set);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn bvecs_round_trip() {
        let path = tmpfile("bvecs");
        let set = PointSet::new(vec![vec![1u8, 2, 3], vec![4, 5, 6]]);
        write_bvecs(&path, &set).unwrap();
        let back = read_bvecs(&path).unwrap();
        assert_eq!(back, set);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn ivecs_round_trip() {
        let path = tmpfile("ivecs");
        let rows = vec![vec![1u32, 2, 3], vec![7, 8, 9]];
        write_ivecs(&path, &rows).unwrap();
        assert_eq!(read_ivecs(&path).unwrap(), rows);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn fbin_round_trip() {
        let path = tmpfile("fbin");
        let set = uniform(13, 5, 2);
        write_fbin(&path, &set).unwrap();
        let back = read_fbin(&path).unwrap();
        assert_eq!(back, set);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn u8bin_round_trip() {
        let path = tmpfile("u8bin");
        let set = PointSet::new(vec![vec![0u8, 128, 255], vec![9, 9, 9]]);
        write_u8bin(&path, &set).unwrap();
        let back = read_u8bin(&path).unwrap();
        assert_eq!(back, set);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_fvecs_reads_empty_set() {
        let path = tmpfile("empty");
        std::fs::write(&path, []).unwrap();
        let set = read_fvecs(&path).unwrap();
        assert!(set.is_empty());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn truncated_fvecs_errors() {
        let path = tmpfile("trunc");
        // dim = 4 but only 2 floats present
        let mut bytes = 4u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        bytes.extend_from_slice(&2.0f32.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        assert!(read_fvecs(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
