//! Scaled synthetic stand-ins for the paper's eight evaluation datasets
//! (Table 1).
//!
//! | Dataset        | Dim    | Entries (paper) | Metric  | Stand-in here            |
//! |----------------|--------|-----------------|---------|--------------------------|
//! | Fashion-MNIST  | 784    | 60,000          | L2      | Gaussian mixture f32     |
//! | GloVe 25       | 25     | 1,183,514       | Cosine  | normalized mixture f32   |
//! | Kosarak        | 27,983 | 74,962          | Jaccard | power-law sparse sets    |
//! | MNIST          | 784    | 60,000          | L2      | Gaussian mixture f32     |
//! | NYTimes        | 256    | 290,000         | Cosine  | normalized mixture f32   |
//! | Last.fm        | 65     | 292,385         | Cosine  | normalized mixture f32   |
//! | Yandex DEEP 1B | 96     | 1,000,000,000   | L2      | Gaussian mixture f32     |
//! | BigANN         | 128    | 1,000,000,000   | L2      | quantized mixture **u8** |
//!
//! Entry counts are scaled by the caller (`n`); dimensionalities and element
//! types match the originals so message sizes, distance-evaluation costs,
//! and the f32-vs-u8 asymmetry of Figure 4b are preserved.

use crate::point::SparseVec;
use crate::set::PointSet;
use crate::synth::{
    gaussian_mixture, normalize, quantize_u8, sparse_powerlaw, MixtureParams, SparseParams,
};

/// Metadata describing one Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name as printed in Table 1.
    pub name: &'static str,
    /// Vector dimensionality (sparse: universe size).
    pub dim: usize,
    /// Entry count in the paper's original dataset.
    pub paper_entries: u64,
    /// Similarity metric label from Table 1.
    pub metric: &'static str,
    /// Element type used on the wire ("f32", "u8", or "u32 ids").
    pub elem: &'static str,
}

/// The Table 1 inventory.
pub const TABLE1: [DatasetInfo; 8] = [
    DatasetInfo {
        name: "Fashion-MNIST",
        dim: 784,
        paper_entries: 60_000,
        metric: "L2",
        elem: "f32",
    },
    DatasetInfo {
        name: "GloVe 25",
        dim: 25,
        paper_entries: 1_183_514,
        metric: "Cosine",
        elem: "f32",
    },
    DatasetInfo {
        name: "Kosarak",
        dim: 27_983,
        paper_entries: 74_962,
        metric: "Jaccard",
        elem: "u32 ids",
    },
    DatasetInfo {
        name: "MNIST",
        dim: 784,
        paper_entries: 60_000,
        metric: "L2",
        elem: "f32",
    },
    DatasetInfo {
        name: "NYTimes",
        dim: 256,
        paper_entries: 290_000,
        metric: "Cosine",
        elem: "f32",
    },
    DatasetInfo {
        name: "Last.fm",
        dim: 65,
        paper_entries: 292_385,
        metric: "Cosine",
        elem: "f32",
    },
    DatasetInfo {
        name: "Yandex DEEP 1B",
        dim: 96,
        paper_entries: 1_000_000_000,
        metric: "L2",
        elem: "f32",
    },
    DatasetInfo {
        name: "BigANN",
        dim: 128,
        paper_entries: 1_000_000_000,
        metric: "L2",
        elem: "u8",
    },
];

fn mixture(n: usize, dim: usize, seed: u64) -> PointSet<Vec<f32>> {
    gaussian_mixture(MixtureParams::embedding_like(n, dim), seed)
}

fn normalized_mixture(n: usize, dim: usize, seed: u64) -> PointSet<Vec<f32>> {
    let mut s = mixture(n, dim, seed);
    normalize(&mut s);
    s
}

/// Fashion-MNIST stand-in: 784-dim f32, L2.
pub fn fashion_mnist_like(n: usize, seed: u64) -> PointSet<Vec<f32>> {
    mixture(n, 784, seed ^ 0xFA51)
}

/// MNIST stand-in: 784-dim f32, L2.
pub fn mnist_like(n: usize, seed: u64) -> PointSet<Vec<f32>> {
    mixture(n, 784, seed ^ 0x3A15)
}

/// GloVe-25 stand-in: 25-dim unit f32, cosine.
pub fn glove25_like(n: usize, seed: u64) -> PointSet<Vec<f32>> {
    normalized_mixture(n, 25, seed ^ 0x610E)
}

/// NYTimes stand-in: 256-dim unit f32, cosine.
pub fn nytimes_like(n: usize, seed: u64) -> PointSet<Vec<f32>> {
    normalized_mixture(n, 256, seed ^ 0x417)
}

/// Last.fm stand-in: 65-dim unit f32, cosine.
pub fn lastfm_like(n: usize, seed: u64) -> PointSet<Vec<f32>> {
    normalized_mixture(n, 65, seed ^ 0x1A57)
}

/// Kosarak stand-in: power-law sparse sets over a 27,983-item universe,
/// Jaccard.
pub fn kosarak_like(n: usize, seed: u64) -> PointSet<SparseVec> {
    sparse_powerlaw(SparseParams::kosarak_like(n), seed ^ 0x0705)
}

/// Yandex DEEP-1B stand-in: 96-dim f32, L2.
pub fn deep1b_like(n: usize, seed: u64) -> PointSet<Vec<f32>> {
    mixture(n, 96, seed ^ 0xDEE9)
}

/// BigANN stand-in: 128-dim **u8**, L2 (byte vectors halve the Type 2/2+
/// message volume relative to DEEP, reproducing Figure 4b's asymmetry).
pub fn bigann_like(n: usize, seed: u64) -> PointSet<Vec<u8>> {
    quantize_u8(&mixture(n, 128, seed ^ 0xB16A))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        assert_eq!(TABLE1.len(), 8);
        assert_eq!(TABLE1[0].name, "Fashion-MNIST");
        assert_eq!(TABLE1[2].metric, "Jaccard");
        assert_eq!(TABLE1[6].paper_entries, 1_000_000_000);
        assert_eq!(TABLE1[7].elem, "u8");
    }

    #[test]
    fn presets_have_paper_dimensions() {
        assert_eq!(fashion_mnist_like(10, 1).dim(), 784);
        assert_eq!(glove25_like(10, 1).dim(), 25);
        assert_eq!(nytimes_like(10, 1).dim(), 256);
        assert_eq!(lastfm_like(10, 1).dim(), 65);
        assert_eq!(deep1b_like(10, 1).dim(), 96);
        assert_eq!(bigann_like(10, 1).dim(), 128);
    }

    #[test]
    fn cosine_presets_are_normalized() {
        for (_, p) in glove25_like(20, 2).iter() {
            let n = crate::point::dense::norm(p);
            assert!((n - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn bigann_is_bytes_deep_is_floats() {
        // The storage formula N*dim*E: u8 vs f32 is a 4x factor at equal dim.
        let deep = deep1b_like(100, 3);
        let big = bigann_like(100, 3);
        assert_eq!(deep.storage_bytes(), 100 * 96 * 4);
        assert_eq!(big.storage_bytes(), 100 * 128);
    }

    #[test]
    fn kosarak_universe_matches_table1() {
        let s = kosarak_like(50, 4);
        for (_, v) in s.iter() {
            assert!(v.ids().iter().all(|&i| i < 27_983));
        }
    }

    #[test]
    fn presets_are_seed_deterministic() {
        assert_eq!(deep1b_like(32, 9), deep1b_like(32, 9));
        assert_ne!(deep1b_like(32, 9), deep1b_like(32, 10));
    }
}
