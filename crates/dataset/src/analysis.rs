//! Dataset difficulty diagnostics.
//!
//! ANN-Benchmarks characterizes datasets by **local intrinsic
//! dimensionality** (LID) and relative-contrast statistics, because they —
//! not the ambient dimension — govern how hard graph-based search is and
//! how fast NN-Descent's "neighbor of a neighbor" heuristic converges.
//! This module implements the Levina–Bickel maximum-likelihood LID
//! estimator over exact k-NN distances, plus summary statistics used by
//! the `dataset_report` harness to sanity-check that the synthetic
//! stand-ins are *not* degenerate (uniform-random) inputs.

use crate::ground_truth::GroundTruth;

/// Maximum-likelihood LID estimate for one point from its ascending k-NN
/// distances (Levina & Bickel 2004): `-(mean of ln(d_i / d_k))^-1`.
/// Returns `None` when the distances are degenerate (fewer than two
/// strictly positive values, or all equal to the max).
pub fn lid_mle(knn_dists: &[f32]) -> Option<f64> {
    let dk = *knn_dists.last()? as f64;
    if dk <= 0.0 || dk.is_nan() {
        return None;
    }
    let logs: Vec<f64> = knn_dists
        .iter()
        .filter(|&&d| d > 0.0)
        .map(|&d| (f64::from(d) / dk).ln())
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let mean = logs.iter().sum::<f64>() / logs.len() as f64;
    if mean >= 0.0 {
        return None; // all distances equal: LID undefined (infinite)
    }
    Some(-1.0 / mean)
}

/// Summary statistics over a ground-truth k-NN structure.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Number of points profiled.
    pub n: usize,
    /// Neighbors per point used.
    pub k: usize,
    /// Mean LID over points where the estimator is defined.
    pub mean_lid: f64,
    /// Median LID.
    pub median_lid: f64,
    /// Mean distance to the nearest neighbor.
    pub mean_nn_dist: f64,
    /// Mean distance to the k-th neighbor.
    pub mean_kth_dist: f64,
    /// `mean_kth / mean_nn` — a contrast measure; near 1 means the k-NN
    /// shell is thin (hard, high-LID data), large means strong locality.
    pub expansion: f64,
}

/// Profile a dataset from its exact ground truth (see
/// [`crate::ground_truth::brute_force_knng`]).
pub fn profile(truth: &GroundTruth) -> DatasetProfile {
    assert!(!truth.is_empty(), "cannot profile empty ground truth");
    let k = truth.dists[0].len();
    assert!(k >= 2, "need at least 2 neighbors to profile");
    let mut lids: Vec<f64> = truth.dists.iter().filter_map(|d| lid_mle(d)).collect();
    lids.sort_unstable_by(|a, b| a.total_cmp(b));
    let mean_lid = if lids.is_empty() {
        f64::NAN
    } else {
        lids.iter().sum::<f64>() / lids.len() as f64
    };
    let median_lid = if lids.is_empty() {
        f64::NAN
    } else {
        lids[lids.len() / 2]
    };
    let mean_nn_dist =
        truth.dists.iter().map(|d| f64::from(d[0])).sum::<f64>() / truth.len() as f64;
    let mean_kth_dist =
        truth.dists.iter().map(|d| f64::from(d[k - 1])).sum::<f64>() / truth.len() as f64;
    DatasetProfile {
        n: truth.len(),
        k,
        mean_lid,
        median_lid,
        mean_nn_dist,
        mean_kth_dist,
        expansion: if mean_nn_dist > 0.0 {
            mean_kth_dist / mean_nn_dist
        } else {
            f64::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::brute_force_knng;
    use crate::metric::L2;
    use crate::synth::{gaussian_mixture, uniform, MixtureParams};

    #[test]
    fn lid_of_geometric_distances_matches_theory() {
        // On a 1-D uniform line, k-NN distances grow ~linearly: d_i = i/k.
        // The MLE over d_i/d_k = i/k gives LID ~= 1.
        let dists: Vec<f32> = (1..=50).map(|i| i as f32 / 50.0).collect();
        let lid = lid_mle(&dists).unwrap();
        assert!((lid - 1.0).abs() < 0.15, "line LID was {lid}");
    }

    #[test]
    fn lid_scales_with_true_dimension() {
        // d-dimensional uniform data has d_i ~ (i/k)^(1/d): the estimator
        // must rank dimensions correctly.
        let mut lids = Vec::new();
        for d in [2usize, 8] {
            let set = uniform(800, d, 7);
            let truth = brute_force_knng(&set, &L2, 20);
            lids.push(profile(&truth).mean_lid);
        }
        assert!(
            lids[1] > lids[0] * 1.5,
            "LID must grow with dimension: {lids:?}"
        );
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(lid_mle(&[]), None);
        assert_eq!(lid_mle(&[0.0, 0.0]), None);
        assert_eq!(lid_mle(&[1.0, 1.0, 1.0]), None);
        assert_eq!(lid_mle(&[0.5]), None);
    }

    #[test]
    fn clustered_data_has_lower_lid_than_uniform() {
        // Cluster structure concentrates neighbors: the effective local
        // dimension drops below the ambient one.
        let dim = 16;
        let uni = uniform(600, dim, 3);
        let clu = gaussian_mixture(
            MixtureParams {
                n: 600,
                dim,
                n_clusters: 12,
                center_spread: 30.0,
                cluster_std: 0.5,
            },
            3,
        );
        let p_uni = profile(&brute_force_knng(&uni, &L2, 15));
        let p_clu = profile(&brute_force_knng(&clu, &L2, 15));
        assert!(
            p_clu.mean_lid < p_uni.mean_lid,
            "clusters should reduce LID: {} vs {}",
            p_clu.mean_lid,
            p_uni.mean_lid
        );
    }

    #[test]
    fn profile_reports_consistent_shape() {
        let set = uniform(300, 4, 11);
        let truth = brute_force_knng(&set, &L2, 10);
        let p = profile(&truth);
        assert_eq!(p.n, 300);
        assert_eq!(p.k, 10);
        assert!(p.mean_kth_dist >= p.mean_nn_dist);
        assert!(p.expansion >= 1.0);
        assert!(p.mean_lid.is_finite());
    }
}
