//! HNSW index persistence into a [`metall::Store`] — the counterpart of
//! Hnswlib's `saveIndex`/`loadIndex`, so the Table 2 survey's expensive
//! builds can be constructed once and re-queried.
//!
//! Layout under a prefix: `meta` = `[n, max_layer, entry, m, efc]`, plus
//! per-layer CSR arrays (`layer<l>/offsets`, `layer<l>/ids`) over all
//! nodes (nodes absent from a layer have empty rows).

use crate::index::{HnswIndex, HnswParams};
use dataset::metric::Metric;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use metall::{Result as StoreResult, Store, StoreError};

/// Snapshot of an index's structure, detached from its borrowed base set.
#[derive(Debug, Clone, PartialEq)]
pub struct HnswSnapshot {
    /// Number of nodes.
    pub n: usize,
    /// Highest populated layer.
    pub max_layer: usize,
    /// Entry point node.
    pub entry: PointId,
    /// Construction `m`.
    pub m: usize,
    /// Construction `ef_construction`.
    pub ef_construction: usize,
    /// Top layer of each node (a node exists on layers `0..=levels[node]`
    /// even where its link list is empty).
    pub levels: Vec<u32>,
    /// `layers[l][node]` = neighbor ids of `node` on layer `l`.
    pub layers: Vec<Vec<Vec<PointId>>>,
}

impl HnswSnapshot {
    /// Persist under `prefix`.
    pub fn save(&self, store: &mut Store, prefix: &str) -> StoreResult<()> {
        store.put(
            &format!("{prefix}/meta"),
            &vec![
                self.n as u64,
                self.max_layer as u64,
                u64::from(self.entry),
                self.m as u64,
                self.ef_construction as u64,
            ],
        )?;
        store.put(&format!("{prefix}/levels"), &self.levels)?;
        for (l, layer) in self.layers.iter().enumerate() {
            let mut offsets: Vec<u64> = Vec::with_capacity(self.n + 1);
            let mut ids: Vec<u32> = Vec::new();
            offsets.push(0);
            for row in layer {
                ids.extend_from_slice(row);
                offsets.push(ids.len() as u64);
            }
            store.put(&format!("{prefix}/layer{l}/offsets"), &offsets)?;
            store.put(&format!("{prefix}/layer{l}/ids"), &ids)?;
        }
        Ok(())
    }

    /// Load a snapshot persisted by [`HnswSnapshot::save`].
    pub fn load(store: &Store, prefix: &str) -> StoreResult<Self> {
        let meta: Vec<u64> = store.get(&format!("{prefix}/meta"))?;
        let [n, max_layer, entry, m, efc] = meta[..] else {
            return Err(StoreError::Decode("bad hnsw meta".into()));
        };
        let n = n as usize;
        let levels: Vec<u32> = store.get(&format!("{prefix}/levels"))?;
        if levels.len() != n {
            return Err(StoreError::Decode("levels length mismatch".into()));
        }
        let mut layers = Vec::with_capacity(max_layer as usize + 1);
        for l in 0..=max_layer as usize {
            let offsets: Vec<u64> = store.get(&format!("{prefix}/layer{l}/offsets"))?;
            let ids: Vec<u32> = store.get(&format!("{prefix}/layer{l}/ids"))?;
            if offsets.len() != n + 1 || offsets.last().copied() != Some(ids.len() as u64) {
                return Err(StoreError::Decode(format!("layer {l} arrays inconsistent")));
            }
            let layer: Vec<Vec<PointId>> = offsets
                .windows(2)
                .map(|w| ids[w[0] as usize..w[1] as usize].to_vec())
                .collect();
            layers.push(layer);
        }
        Ok(HnswSnapshot {
            n,
            max_layer: max_layer as usize,
            entry: entry as PointId,
            m: m as usize,
            ef_construction: efc as usize,
            levels,
            layers,
        })
    }
}

impl<'a, P: Point, M: Metric<P>> HnswIndex<'a, P, M> {
    /// Capture the index structure for persistence.
    pub fn snapshot(&self) -> HnswSnapshot {
        let mut layers: Vec<Vec<Vec<PointId>>> =
            vec![vec![Vec::new(); self.len()]; self.max_layer() + 1];
        for node in 0..self.len() as PointId {
            for (l, links) in self.node_layers(node).iter().enumerate() {
                layers[l][node as usize] = links.clone();
            }
        }
        HnswSnapshot {
            n: self.len(),
            max_layer: self.max_layer(),
            entry: self.entry_point(),
            m: self.params().m,
            ef_construction: self.params().ef_construction,
            levels: (0..self.len() as PointId)
                .map(|node| (self.node_layers(node).len() - 1) as u32)
                .collect(),
            layers,
        }
    }

    /// Reattach a snapshot to its base set, producing a queryable index.
    /// The base set must be the one the snapshot was built over.
    pub fn from_snapshot(base: &'a PointSet<P>, metric: M, snap: &HnswSnapshot) -> Self {
        assert_eq!(base.len(), snap.n, "snapshot and base set disagree on N");
        HnswIndex::restore(
            base,
            metric,
            HnswParams::new(snap.m, snap.ef_construction),
            snap.entry,
            snap.max_layer,
            (0..snap.n as PointId)
                .map(|node| {
                    let top = snap.levels[node as usize] as usize;
                    (0..=top)
                        .map(|l| snap.layers[l][node as usize].clone())
                        .collect()
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::metric::L2;
    use dataset::synth::uniform;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hnsw-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn snapshot_save_load_round_trip() {
        let dir = tmpdir("rt");
        let base = uniform(300, 6, 1);
        let idx = HnswIndex::build(&base, L2, HnswParams::new(8, 40).seed(2));
        let snap = idx.snapshot();
        let mut store = Store::create(&dir).unwrap();
        snap.save(&mut store, "hnsw").unwrap();
        let back = HnswSnapshot::load(&store, "hnsw").unwrap();
        assert_eq!(back, snap);
        Store::destroy(&dir).unwrap();
    }

    #[test]
    fn restored_index_answers_identically() {
        let dir = tmpdir("same");
        let base = uniform(400, 5, 3);
        let idx = HnswIndex::build(&base, L2, HnswParams::new(6, 30).seed(4));
        let mut store = Store::create(&dir).unwrap();
        idx.snapshot().save(&mut store, "h").unwrap();
        drop(store);

        let store = Store::open(&dir).unwrap();
        let snap = HnswSnapshot::load(&store, "h").unwrap();
        let restored = HnswIndex::from_snapshot(&base, L2, &snap);
        for probe in [0u32, 123, 399] {
            let a = idx.search(base.point(probe), 5, 40);
            let b = restored.search(base.point(probe), 5, 40);
            assert_eq!(a, b, "probe {probe} diverged after restore");
        }
        Store::destroy(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "snapshot and base set disagree")]
    fn wrong_base_rejected() {
        let base = uniform(50, 3, 5);
        let idx = HnswIndex::build(&base, L2, HnswParams::new(4, 20));
        let snap = idx.snapshot();
        let other = uniform(40, 3, 6);
        let _ = HnswIndex::from_snapshot(&other, L2, &snap);
    }
}
