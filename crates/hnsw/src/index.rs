//! The HNSW index: hierarchical navigable small-world graph following
//! Malkov & Yashunin (TPAMI 2018), the algorithm behind Hnswlib.
//!
//! Differences from a k-NNG that matter for the paper's comparison
//! (Section 5.3.2): HNSW's layered structure is *not* a general-purpose
//! k-NNG — each node keeps up to `M` (layer > 0) or `2M` (layer 0)
//! links chosen by the select-neighbors heuristic, and extracting a
//! portable k-NNG requires extra processing. Construction quality is
//! governed by `ef_construction`, search quality by `ef`.

use dataset::metric::Metric;
use dataset::order::OrdF32;
use dataset::point::Point;
use dataset::set::{PointId, PointSet};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Construction parameters (Table 2 of the paper sweeps `M` and `efc`).
#[derive(Debug, Clone, Copy)]
pub struct HnswParams {
    /// Max links per node on layers above 0; layer 0 allows `2 * m`.
    pub m: usize,
    /// Beam width during construction (`ef_construction`).
    pub ef_construction: usize,
    /// RNG seed for level sampling.
    pub seed: u64,
}

impl HnswParams {
    /// Defaults in the range Hnswlib ships.
    pub fn new(m: usize, ef_construction: usize) -> Self {
        assert!(m >= 2 && ef_construction >= 1);
        HnswParams {
            m,
            ef_construction,
            seed: 0x45A7,
        }
    }

    /// Set the level-sampling seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-node adjacency: one neighbor list per layer the node exists on.
#[derive(Debug, Clone)]
struct NodeLinks {
    /// `layers[l]` = neighbor ids on layer `l`; `layers.len() - 1` is the
    /// node's top layer.
    layers: Vec<Vec<PointId>>,
}

/// An HNSW index over a borrowed [`PointSet`].
pub struct HnswIndex<'a, P, M> {
    base: &'a PointSet<P>,
    metric: M,
    params: HnswParams,
    nodes: Vec<NodeLinks>,
    entry: PointId,
    max_layer: usize,
    /// Distance evaluations spent during construction.
    pub build_distance_evals: u64,
}

impl<'a, P: Point, M: Metric<P>> HnswIndex<'a, P, M> {
    /// Build an index over every point in `base`, inserting in id order.
    pub fn build(base: &'a PointSet<P>, metric: M, params: HnswParams) -> Self {
        assert!(!base.is_empty(), "cannot index an empty set");
        let ml = 1.0 / (params.m as f64).ln();
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        let mut index = HnswIndex {
            base,
            metric,
            params,
            nodes: Vec::with_capacity(base.len()),
            entry: 0,
            max_layer: 0,
            build_distance_evals: 0,
        };
        for id in 0..base.len() as PointId {
            let level = (-rng.gen::<f64>().ln() * ml).floor() as usize;
            index.insert(id, level);
        }
        index
    }

    #[inline]
    fn dist(&mut self, a: PointId, q: &P) -> f32 {
        self.build_distance_evals += 1;
        self.metric.distance(self.base.point(a), q)
    }

    /// Greedy single-entry descent on one layer (used above the insertion
    /// layer and during query descent).
    fn greedy_closest(&mut self, q: &P, mut cur: PointId, layer: usize) -> PointId {
        let mut cur_d = self.dist(cur, q);
        loop {
            let mut improved = false;
            let neighbors = self.nodes[cur as usize].layers[layer].clone();
            for u in neighbors {
                let d = self.dist(u, q);
                if d < cur_d {
                    cur = u;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search on one layer: returns up to `ef` closest `(dist, id)`
    /// pairs, ascending.
    fn search_layer(
        &mut self,
        q: &P,
        entries: &[PointId],
        ef: usize,
        layer: usize,
    ) -> Vec<(f32, PointId)> {
        let mut visited = vec![false; self.nodes.len()];
        let mut result: BinaryHeap<(OrdF32, PointId)> = BinaryHeap::new(); // max-heap
        let mut candidates: BinaryHeap<Reverse<(OrdF32, PointId)>> = BinaryHeap::new();
        for &e in entries {
            if visited[e as usize] {
                continue;
            }
            visited[e as usize] = true;
            let d = self.dist(e, q);
            result.push((OrdF32(d), e));
            candidates.push(Reverse((OrdF32(d), e)));
        }
        while result.len() > ef {
            result.pop();
        }
        while let Some(Reverse((OrdF32(d), c))) = candidates.pop() {
            let worst = result.peek().map_or(f32::INFINITY, |&(OrdF32(w), _)| w);
            if d > worst && result.len() >= ef {
                break;
            }
            let neighbors = self.nodes[c as usize].layers[layer].clone();
            for u in neighbors {
                if visited[u as usize] {
                    continue;
                }
                visited[u as usize] = true;
                let du = self.dist(u, q);
                let worst = result.peek().map_or(f32::INFINITY, |&(OrdF32(w), _)| w);
                if result.len() < ef || du < worst {
                    result.push((OrdF32(du), u));
                    if result.len() > ef {
                        result.pop();
                    }
                    candidates.push(Reverse((OrdF32(du), u)));
                }
            }
        }
        let mut out: Vec<(f32, PointId)> =
            result.into_iter().map(|(OrdF32(d), id)| (d, id)).collect();
        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        out
    }

    /// Algorithm 4 of the HNSW paper: the select-neighbors *heuristic*. A
    /// candidate is kept only if it is closer to the query than to every
    /// already-kept neighbor — this spreads links across directions, which
    /// is what gives HNSW graphs their navigability.
    fn select_neighbors(&mut self, candidates: &[(f32, PointId)], m: usize) -> Vec<PointId> {
        let mut kept: Vec<(f32, PointId)> = Vec::with_capacity(m);
        for &(d, c) in candidates {
            if kept.len() >= m {
                break;
            }
            let point_c = self.base.point(c).clone();
            let dominated = kept.iter().any(|&(_, s)| {
                self.build_distance_evals += 1;
                self.metric.distance(&point_c, self.base.point(s)) < d
            });
            if !dominated {
                kept.push((d, c));
            }
        }
        // Hnswlib pads with the nearest remaining candidates if the
        // heuristic kept fewer than m (keepPrunedConnections=true).
        if kept.len() < m {
            for &(d, c) in candidates {
                if kept.len() >= m {
                    break;
                }
                if !kept.iter().any(|&(_, s)| s == c) {
                    kept.push((d, c));
                }
            }
        }
        kept.into_iter().map(|(_, id)| id).collect()
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            2 * self.params.m
        } else {
            self.params.m
        }
    }

    fn insert(&mut self, id: PointId, level: usize) {
        let node = NodeLinks {
            layers: vec![Vec::new(); level + 1],
        };
        self.nodes.push(node);
        debug_assert_eq!(self.nodes.len() - 1, id as usize);
        if id == 0 {
            self.entry = 0;
            self.max_layer = level;
            return;
        }
        let q = self.base.point(id).clone();
        let mut cur = self.entry;
        // Descend greedily through layers above the insertion level.
        for layer in ((level + 1)..=self.max_layer).rev() {
            cur = self.greedy_closest(&q, cur, layer);
        }
        // Connect on each layer from min(level, max_layer) down to 0.
        let mut entries = vec![cur];
        for layer in (0..=level.min(self.max_layer)).rev() {
            let found = self.search_layer(&q, &entries, self.params.ef_construction, layer);
            let m = self.params.m;
            let selected = self.select_neighbors(&found, m);
            for &u in &selected {
                self.nodes[id as usize].layers[layer].push(u);
                self.nodes[u as usize].layers[layer].push(id);
                // Shrink the neighbor's list if it overflowed.
                let cap = self.max_links(layer);
                if self.nodes[u as usize].layers[layer].len() > cap {
                    let point_u = self.base.point(u).clone();
                    let mut scored: Vec<(f32, PointId)> = self.nodes[u as usize].layers[layer]
                        .clone()
                        .into_iter()
                        .map(|w| (self.dist(w, &point_u), w))
                        .collect();
                    scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                    let shrunk = self.select_neighbors(&scored, cap);
                    self.nodes[u as usize].layers[layer] = shrunk;
                }
            }
            entries = found.into_iter().map(|(_, id)| id).collect();
        }
        if level > self.max_layer {
            self.max_layer = level;
            self.entry = id;
        }
    }

    /// k-ANN query with beam width `ef` (clamped up to `k`). Returns up to
    /// `k` `(id, dist)` pairs ascending.
    pub fn search(&self, q: &P, k: usize, ef: usize) -> Vec<(PointId, f32)> {
        // Queries must not mutate build counters: clone a lightweight
        // searcher view. Distances here use a local counter.
        let mut me = SearchView {
            index: self,
            evals: 0,
        };
        let ef = ef.max(k);
        let mut cur = self.entry;
        for layer in (1..=self.max_layer).rev() {
            cur = me.greedy_closest(q, cur, layer);
        }
        let found = me.search_layer(q, &[cur], ef, 0);
        found.into_iter().take(k).map(|(d, id)| (id, d)).collect()
    }

    /// Parallel batch query; returns per-query id lists and throughput.
    pub fn search_batch(
        &self,
        queries: &PointSet<P>,
        k: usize,
        ef: usize,
    ) -> (Vec<Vec<PointId>>, f64) {
        let start = std::time::Instant::now();
        let ids: Vec<Vec<PointId>> = queries
            .points()
            .par_iter()
            .map(|q| {
                self.search(q, k, ef)
                    .into_iter()
                    .map(|(id, _)| id)
                    .collect()
            })
            .collect();
        let secs = start.elapsed().as_secs_f64();
        (ids, queries.len() as f64 / secs.max(1e-12))
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Highest populated layer.
    pub fn max_layer(&self) -> usize {
        self.max_layer
    }

    /// Total links on a layer (for structural tests).
    pub fn layer_links(&self, layer: usize) -> usize {
        self.nodes
            .iter()
            .map(|n| n.layers.get(layer).map_or(0, Vec::len))
            .sum()
    }

    /// A node's per-layer neighbor lists (index = layer).
    pub(crate) fn node_layers(&self, node: PointId) -> &Vec<Vec<PointId>> {
        &self.nodes[node as usize].layers
    }

    /// The current entry point node id.
    pub fn entry_point(&self) -> PointId {
        self.entry
    }

    /// The construction parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// Rebuild an index handle from previously captured structure (see
    /// `persist::HnswSnapshot`). `links[node][layer]` are neighbor ids.
    pub(crate) fn restore(
        base: &'a PointSet<P>,
        metric: M,
        params: HnswParams,
        entry: PointId,
        max_layer: usize,
        links: Vec<Vec<Vec<PointId>>>,
    ) -> Self {
        assert_eq!(links.len(), base.len());
        HnswIndex {
            base,
            metric,
            params,
            nodes: links
                .into_iter()
                .map(|layers| NodeLinks { layers })
                .collect(),
            entry,
            max_layer,
            build_distance_evals: 0,
        }
    }

    /// Extract the layer-0 adjacency as rows of `(id, dist)` — the "extra
    /// processing" the paper mentions is needed to get a portable k-NNG out
    /// of Hnswlib.
    pub fn layer0_graph(&self) -> Vec<Vec<(PointId, f32)>> {
        (0..self.nodes.len() as PointId)
            .map(|v| {
                let mut row: Vec<(PointId, f32)> = self.nodes[v as usize].layers[0]
                    .iter()
                    .map(|&u| {
                        (
                            u,
                            self.metric.distance(self.base.point(v), self.base.point(u)),
                        )
                    })
                    .collect();
                row.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
                row
            })
            .collect()
    }
}

/// Immutable search view: duplicates the traversal logic without the
/// construction-time counters so `search` can take `&self`.
struct SearchView<'i, 'a, P, M> {
    index: &'i HnswIndex<'a, P, M>,
    evals: u64,
}

impl<'i, 'a, P: Point, M: Metric<P>> SearchView<'i, 'a, P, M> {
    #[inline]
    fn dist(&mut self, a: PointId, q: &P) -> f32 {
        self.evals += 1;
        self.index.metric.distance(self.index.base.point(a), q)
    }

    fn greedy_closest(&mut self, q: &P, mut cur: PointId, layer: usize) -> PointId {
        let mut cur_d = self.dist(cur, q);
        loop {
            let mut improved = false;
            for &u in &self.index.nodes[cur as usize].layers[layer] {
                let d = self.dist(u, q);
                if d < cur_d {
                    cur = u;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    fn search_layer(
        &mut self,
        q: &P,
        entries: &[PointId],
        ef: usize,
        layer: usize,
    ) -> Vec<(f32, PointId)> {
        let mut visited = vec![false; self.index.nodes.len()];
        let mut result: BinaryHeap<(OrdF32, PointId)> = BinaryHeap::new();
        let mut candidates: BinaryHeap<Reverse<(OrdF32, PointId)>> = BinaryHeap::new();
        for &e in entries {
            if visited[e as usize] {
                continue;
            }
            visited[e as usize] = true;
            let d = self.dist(e, q);
            result.push((OrdF32(d), e));
            candidates.push(Reverse((OrdF32(d), e)));
        }
        while result.len() > ef {
            result.pop();
        }
        while let Some(Reverse((OrdF32(d), c))) = candidates.pop() {
            let worst = result.peek().map_or(f32::INFINITY, |&(OrdF32(w), _)| w);
            if d > worst && result.len() >= ef {
                break;
            }
            for &u in &self.index.nodes[c as usize].layers[layer] {
                if visited[u as usize] {
                    continue;
                }
                visited[u as usize] = true;
                let du = self.dist(u, q);
                let worst = result.peek().map_or(f32::INFINITY, |&(OrdF32(w), _)| w);
                if result.len() < ef || du < worst {
                    result.push((OrdF32(du), u));
                    if result.len() > ef {
                        result.pop();
                    }
                    candidates.push(Reverse((OrdF32(du), u)));
                }
            }
        }
        let mut out: Vec<(f32, PointId)> =
            result.into_iter().map(|(OrdF32(d), id)| (d, id)).collect();
        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::ground_truth::brute_force_queries;
    use dataset::metric::L2;
    use dataset::recall::mean_recall;
    use dataset::synth::{gaussian_mixture, split_queries, uniform, MixtureParams};

    #[test]
    fn builds_over_all_points() {
        let set = uniform(200, 4, 1);
        let idx = HnswIndex::build(&set, L2, HnswParams::new(8, 50));
        assert_eq!(idx.len(), 200);
        assert!(idx.layer_links(0) > 0);
    }

    #[test]
    fn member_query_finds_itself() {
        let set = uniform(300, 4, 2);
        let idx = HnswIndex::build(&set, L2, HnswParams::new(8, 64));
        for probe in [0u32, 57, 299] {
            let r = idx.search(set.point(probe), 1, 32);
            assert_eq!(r[0].0, probe, "probe {probe}");
            assert_eq!(r[0].1, 0.0);
        }
    }

    #[test]
    fn search_results_sorted_and_unique() {
        let set = uniform(400, 6, 3);
        let idx = HnswIndex::build(&set, L2, HnswParams::new(8, 64));
        let r = idx.search(set.point(9), 10, 50);
        assert_eq!(r.len(), 10);
        assert!(r.windows(2).all(|w| w[0].1 <= w[1].1));
        let mut ids: Vec<PointId> = r.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn layer0_degree_bounded_by_2m() {
        let set = uniform(500, 4, 4);
        let m = 6;
        let idx = HnswIndex::build(&set, L2, HnswParams::new(m, 40));
        for v in 0..idx.len() as PointId {
            assert!(idx.nodes[v as usize].layers[0].len() <= 2 * m);
            for (layer, links) in idx.nodes[v as usize].layers.iter().enumerate().skip(1) {
                assert!(links.len() <= m, "layer {layer} overflow");
            }
        }
    }

    #[test]
    fn upper_layers_are_sparser() {
        let set = uniform(2000, 4, 5);
        let idx = HnswIndex::build(&set, L2, HnswParams::new(8, 40));
        if idx.max_layer() >= 1 {
            assert!(idx.layer_links(1) < idx.layer_links(0));
        }
    }

    #[test]
    fn recall_improves_with_ef() {
        let set = gaussian_mixture(MixtureParams::embedding_like(1500, 12), 6);
        let (base, queries) = split_queries(set, 50);
        let idx = HnswIndex::build(&base, L2, HnswParams::new(12, 100));
        let truth = brute_force_queries(&base, &queries, &L2, 10);
        let (lo_ids, _) = idx.search_batch(&queries, 10, 10);
        let (hi_ids, _) = idx.search_batch(&queries, 10, 200);
        let lo = mean_recall(&lo_ids, &truth);
        let hi = mean_recall(&hi_ids, &truth);
        assert!(hi >= lo, "ef=200 ({hi}) must beat ef=10 ({lo})");
        assert!(hi > 0.9, "hnsw recall at ef=200 was {hi}");
    }

    #[test]
    fn efc_improves_graph_quality() {
        let set = gaussian_mixture(MixtureParams::embedding_like(1200, 12), 7);
        let (base, queries) = split_queries(set, 40);
        let truth = brute_force_queries(&base, &queries, &L2, 10);
        let cheap = HnswIndex::build(&base, L2, HnswParams::new(8, 10));
        let good = HnswIndex::build(&base, L2, HnswParams::new(8, 150));
        let (c_ids, _) = cheap.search_batch(&queries, 10, 60);
        let (g_ids, _) = good.search_batch(&queries, 10, 60);
        let rc = mean_recall(&c_ids, &truth);
        let rg = mean_recall(&g_ids, &truth);
        assert!(rg >= rc - 0.02, "efc=150 ({rg}) vs efc=10 ({rc})");
        // Higher efc must cost more construction work.
        assert!(good.build_distance_evals > cheap.build_distance_evals);
    }

    #[test]
    fn layer0_graph_extraction_is_sorted_symmetless() {
        let set = uniform(100, 3, 8);
        let idx = HnswIndex::build(&set, L2, HnswParams::new(4, 20));
        let g = idx.layer0_graph();
        assert_eq!(g.len(), 100);
        for row in &g {
            assert!(row.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn single_point_index() {
        let set = PointSet::new(vec![vec![1.0f32, 2.0]]);
        let idx = HnswIndex::build(&set, L2, HnswParams::new(4, 10));
        let r = idx.search(&vec![0.0f32, 0.0], 1, 10);
        assert_eq!(r[0].0, 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let set = uniform(300, 4, 9);
        let a = HnswIndex::build(&set, L2, HnswParams::new(6, 30).seed(1));
        let b = HnswIndex::build(&set, L2, HnswParams::new(6, 30).seed(1));
        let qa = a.search(set.point(5), 5, 30);
        let qb = b.search(set.point(5), 5, 30);
        assert_eq!(qa, qb);
    }
}
