//! # hnsw — the Hnswlib stand-in baseline
//!
//! A from-scratch Rust implementation of Hierarchical Navigable Small World
//! graphs (Malkov & Yashunin, TPAMI 2018). The DNND paper compares its
//! distributed NN-Descent against Hnswlib (Section 5.3.2) because both are
//! graph-based ANN indices supporting arbitrary metrics; this crate plays
//! that role in the reproduced Figures 2 and 3 and the Table 2 parameter
//! survey.
//!
//! ```
//! use dataset::{synth, L2};
//! use hnsw::{HnswIndex, HnswParams};
//!
//! let set = synth::uniform(500, 8, 7);
//! let index = HnswIndex::build(&set, L2, HnswParams::new(8, 50));
//! let hits = index.search(set.point(3), 5, 40);
//! assert_eq!(hits[0].0, 3); // a member query finds itself first
//! ```

pub mod index;
pub mod persist;

pub use index::{HnswIndex, HnswParams};
pub use persist::HnswSnapshot;
