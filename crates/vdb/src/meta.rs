//! Typed per-point metadata records.
//!
//! Each point in a collection carries one [`MetaRecord`]: an ordered map
//! of field name → [`Value`]. Records persist through [`metall::Store`]
//! under the namespace's `meta/{id}` key (see `collection.rs` for the
//! layout), using a deterministic line-oriented text encoding — field
//! names and atoms are restricted charsets, so no escaping is needed.

use crate::predicate::{valid_atom, valid_field, Value};
use metall::{Persist, StoreError};
use std::collections::BTreeMap;
use std::fmt;

/// An ordered field → value map attached to one point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetaRecord {
    fields: BTreeMap<String, Value>,
}

impl MetaRecord {
    /// An empty record (matches no predicate term).
    pub fn new() -> MetaRecord {
        MetaRecord::default()
    }

    /// Set a field, validating the name (and atom charset for strings).
    /// Returns the previous value, if any.
    pub fn set(&mut self, field: impl Into<String>, value: Value) -> Result<Option<Value>, String> {
        let field = field.into();
        if !valid_field(&field) {
            return Err(format!("invalid field name {field:?}"));
        }
        if let Value::Str(s) = &value {
            if !valid_atom(s) {
                return Err(format!("invalid atom {s:?}"));
            }
        }
        Ok(self.fields.insert(field, value))
    }

    /// Look up a field.
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.fields.get(field)
    }

    /// Iterate fields in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The synthetic record stamped on generated and online-inserted
    /// points: a single `bucket` Int field in `[0, 100)`, a pure FNV-1a
    /// function of `(seed, id)`. Filtered serving traffic draws range
    /// predicates over this field, so selectivity is controllable without
    /// any external metadata source.
    pub fn bucket_record(seed: u64, id: u64) -> MetaRecord {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        bytes[8..].copy_from_slice(&id.to_le_bytes());
        let bucket = (metall::checksum::fnv1a(&bytes) % 100) as i64;
        let mut rec = MetaRecord::new();
        rec.set("bucket", Value::Int(bucket))
            .expect("'bucket' is a valid field name");
        rec
    }

    /// Parse the `field=value` comma-list form the CLI accepts
    /// (e.g. `tier=gold,year=2023`). Empty input gives an empty record.
    pub fn parse_kv(text: &str) -> Result<MetaRecord, String> {
        let mut rec = MetaRecord::new();
        for pair in text.split(',').filter(|p| !p.trim().is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("metadata pair {pair:?}: want field=value"))?;
            let (k, v) = (k.trim(), v.trim());
            let value = if v.starts_with('-') || v.starts_with(|c: char| c.is_ascii_digit()) {
                Value::Int(
                    v.parse::<i64>()
                        .map_err(|_| format!("invalid integer value {v:?}"))?,
                )
            } else {
                Value::atom(v)?
            };
            rec.set(k, value)?;
        }
        Ok(rec)
    }
}

impl fmt::Display for MetaRecord {
    /// Canonical `field=value` comma-list, in field-name order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

impl Persist for MetaRecord {
    /// One line per field: `name i <int>` or `name s <atom>`.
    fn persist_to_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        for (k, v) in &self.fields {
            match v {
                Value::Int(i) => out.push_str(&format!("{k} i {i}\n")),
                Value::Str(s) => out.push_str(&format!("{k} s {s}\n")),
            }
        }
        out.into_bytes()
    }

    fn persist_from_bytes(bytes: &[u8]) -> metall::Result<Self> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| StoreError::Decode(format!("meta record not utf-8: {e}")))?;
        let mut rec = MetaRecord::new();
        for line in text.lines() {
            let mut parts = line.splitn(3, ' ');
            let bad = || StoreError::Decode(format!("bad meta record line {line:?}"));
            let field = parts.next().ok_or_else(bad)?;
            let tag = parts.next().ok_or_else(bad)?;
            let raw = parts.next().ok_or_else(bad)?;
            let value = match tag {
                "i" => Value::Int(raw.parse::<i64>().map_err(|_| bad())?),
                "s" => Value::atom(raw).map_err(|_| bad())?,
                _ => return Err(bad()),
            };
            rec.set(field, value).map_err(|_| bad())?;
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_round_trip() {
        let mut r = MetaRecord::new();
        r.set("tier", Value::Str("gold".into())).unwrap();
        r.set("year", Value::Int(-5)).unwrap();
        let bytes = r.persist_to_bytes();
        assert_eq!(MetaRecord::persist_from_bytes(&bytes).unwrap(), r);
        assert_eq!(
            MetaRecord::persist_from_bytes(&MetaRecord::new().persist_to_bytes()).unwrap(),
            MetaRecord::new()
        );
    }

    #[test]
    fn parse_kv_and_display() {
        let r = MetaRecord::parse_kv("tier=gold, year=2023").unwrap();
        assert_eq!(r.to_string(), "tier=gold,year=2023");
        assert_eq!(r.get("year"), Some(&Value::Int(2023)));
        assert_eq!(MetaRecord::parse_kv("").unwrap(), MetaRecord::new());
        assert!(MetaRecord::parse_kv("tier").is_err());
        assert!(MetaRecord::parse_kv("tier=9a").is_err());
        assert!(MetaRecord::parse_kv("9x=1").is_err());
    }

    #[test]
    fn bucket_record_is_deterministic_and_in_range() {
        for id in 0..200u64 {
            let r = MetaRecord::bucket_record(7, id);
            assert_eq!(r, MetaRecord::bucket_record(7, id));
            match r.get("bucket") {
                Some(&Value::Int(b)) => assert!((0..100).contains(&b)),
                other => panic!("bad bucket field: {other:?}"),
            }
        }
        // Seed-sensitive: at least one id maps to a different bucket.
        assert!((0..200u64)
            .any(|id| { MetaRecord::bucket_record(7, id) != MetaRecord::bucket_record(8, id) }));
    }

    #[test]
    fn set_rejects_bad_names_and_atoms() {
        let mut r = MetaRecord::new();
        assert!(r.set("ok_name", Value::Int(1)).unwrap().is_none());
        assert!(r.set("ok_name", Value::Int(2)).unwrap().is_some());
        assert!(r.set("bad-name", Value::Int(1)).is_err());
        assert!(r.set("x", Value::Str("has space".into())).is_err());
    }
}
