//! The metadata predicate language: AND-of-terms over typed fields.
//!
//! Grammar (canonical form — `Display` emits exactly this, `parse`
//! accepts it plus arbitrary extra whitespace between tokens):
//!
//! ```text
//! predicate := term (' && ' term)*
//! term      := field ' == ' value               equality
//!            | field ' in ' '{' values '}'      set membership
//!            | field ' in ' '[' int ' .. ' int ']'   inclusive int range
//! values    := value (', ' value)*
//! value     := int | atom
//! field     := [A-Za-z_][A-Za-z0-9_]*
//! atom      := [A-Za-z_][A-Za-z0-9_-]*
//! int       := '-'? [0-9]+                      (i64)
//! ```
//!
//! Atoms must start with a letter or underscore, so the printed form of a
//! value is unambiguous (an integer never reparses as an atom and vice
//! versa) and `parse(display(p)) == p` holds for every valid predicate —
//! the property the vdb proptests pin down. Set values are stored sorted
//! and deduplicated (integers before atoms), making the canonical string —
//! and therefore the predicate's FNV-1a hash, which the serving layer
//! folds into its result-cache key — a pure function of the predicate's
//! meaning.

use crate::meta::MetaRecord;
use metall::checksum::fnv1a;
use std::fmt;

/// A typed field value: an integer or a short string atom.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// String atom (`[A-Za-z_][A-Za-z0-9_-]*`).
    Str(String),
}

/// True iff `s` is a valid atom: starts with a letter or `_`, continues
/// with letters, digits, `_`, `-`.
pub fn valid_atom(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// True iff `s` is a valid field name: starts with a letter or `_`,
/// continues with letters, digits, `_`.
pub fn valid_field(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Value {
    /// Build a string atom, validating the charset.
    pub fn atom(s: impl Into<String>) -> Result<Value, String> {
        let s = s.into();
        if valid_atom(&s) {
            Ok(Value::Str(s))
        } else {
            Err(format!("invalid atom {s:?}: want [A-Za-z_][A-Za-z0-9_-]*"))
        }
    }

    fn parse(tok: &str) -> Result<Value, String> {
        if tok.starts_with('-') || tok.starts_with(|c: char| c.is_ascii_digit()) {
            tok.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| format!("invalid integer value {tok:?}"))
        } else {
            Value::atom(tok)
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

/// One conjunct of a predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// `field == value`
    Eq { field: String, value: Value },
    /// `field in {v1, v2, ...}` — values sorted and deduplicated.
    In { field: String, values: Vec<Value> },
    /// `field in [lo .. hi]` — inclusive integer range, `lo <= hi`.
    Range { field: String, lo: i64, hi: i64 },
}

impl Term {
    /// Build an equality term.
    pub fn eq(field: impl Into<String>, value: Value) -> Result<Term, String> {
        let field = field.into();
        if !valid_field(&field) {
            return Err(format!("invalid field name {field:?}"));
        }
        Ok(Term::Eq { field, value })
    }

    /// Build a set-membership term. Values are sorted and deduplicated
    /// into the canonical order (integers before atoms).
    pub fn is_in(field: impl Into<String>, mut values: Vec<Value>) -> Result<Term, String> {
        let field = field.into();
        if !valid_field(&field) {
            return Err(format!("invalid field name {field:?}"));
        }
        if values.is_empty() {
            return Err("empty value set in 'in' term".into());
        }
        values.sort_unstable();
        values.dedup();
        Ok(Term::In { field, values })
    }

    /// Build an inclusive integer-range term.
    pub fn range(field: impl Into<String>, lo: i64, hi: i64) -> Result<Term, String> {
        let field = field.into();
        if !valid_field(&field) {
            return Err(format!("invalid field name {field:?}"));
        }
        if lo > hi {
            return Err(format!("empty range [{lo} .. {hi}]"));
        }
        Ok(Term::Range { field, lo, hi })
    }

    /// Does `rec` satisfy this term? A missing field never matches.
    pub fn eval(&self, rec: &MetaRecord) -> bool {
        match self {
            Term::Eq { field, value } => rec.get(field) == Some(value),
            Term::In { field, values } => rec
                .get(field)
                .is_some_and(|v| values.binary_search(v).is_ok()),
            Term::Range { field, lo, hi } => match rec.get(field) {
                Some(&Value::Int(i)) => (*lo..=*hi).contains(&i),
                _ => false,
            },
        }
    }

    fn parse(text: &str) -> Result<Term, String> {
        let text = text.trim();
        if let Some((field, value)) = text.split_once("==") {
            return Term::eq(field.trim(), Value::parse(value.trim())?);
        }
        let (field, rhs) = text
            .split_once(" in ")
            .ok_or_else(|| format!("term {text:?}: want '==' or 'in'"))?;
        let (field, rhs) = (field.trim(), rhs.trim());
        if let Some(inner) = rhs.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
            let values = inner
                .split(',')
                .map(|tok| Value::parse(tok.trim()))
                .collect::<Result<Vec<Value>, String>>()?;
            return Term::is_in(field, values);
        }
        if let Some(inner) = rhs.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let (lo, hi) = inner
                .split_once("..")
                .ok_or_else(|| format!("range {inner:?}: want 'lo .. hi'"))?;
            let lo = lo
                .trim()
                .parse::<i64>()
                .map_err(|_| format!("invalid range bound {:?}", lo.trim()))?;
            let hi = hi
                .trim()
                .parse::<i64>()
                .map_err(|_| format!("invalid range bound {:?}", hi.trim()))?;
            return Term::range(field, lo, hi);
        }
        Err(format!(
            "term {text:?}: want '{{...}}' or '[lo .. hi]' after 'in'"
        ))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Eq { field, value } => write!(f, "{field} == {value}"),
            Term::In { field, values } => {
                write!(f, "{field} in {{")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
            Term::Range { field, lo, hi } => write!(f, "{field} in [{lo} .. {hi}]"),
        }
    }
}

/// An AND-of-terms metadata predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Predicate {
    terms: Vec<Term>,
}

impl Predicate {
    /// Build from at least one term.
    pub fn new(terms: Vec<Term>) -> Result<Predicate, String> {
        if terms.is_empty() {
            return Err("predicate needs at least one term".into());
        }
        Ok(Predicate { terms })
    }

    /// The conjuncts, in author order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Does `rec` satisfy every term?
    pub fn eval(&self, rec: &MetaRecord) -> bool {
        self.terms.iter().all(|t| t.eval(rec))
    }

    /// FNV-1a of the canonical string — the serving layer folds this into
    /// its result-cache key so differently-filtered hits never collide.
    pub fn fnv(&self) -> u64 {
        fnv1a(self.to_string().as_bytes())
    }

    /// Parse the canonical form (whitespace-lenient between tokens).
    pub fn parse(text: &str) -> Result<Predicate, String> {
        let text = text.trim();
        if text.is_empty() {
            return Err("empty predicate".into());
        }
        let terms = text
            .split("&&")
            .map(Term::parse)
            .collect::<Result<Vec<Term>, String>>()?;
        Predicate::new(terms)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(" && ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Predicate {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Predicate::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pairs: &[(&str, Value)]) -> MetaRecord {
        let mut r = MetaRecord::new();
        for (k, v) in pairs {
            r.set(*k, v.clone()).unwrap();
        }
        r
    }

    #[test]
    fn display_parse_round_trip_canonical_examples() {
        for s in [
            "tier == gold",
            "tier in {bronze, gold, silver}",
            "year in [2019 .. 2026]",
            "tier == gold && year in [2019 .. 2026] && lang in {-3, 7, de, en}",
            "n == -42",
        ] {
            let p = Predicate::parse(s).unwrap();
            assert_eq!(p.to_string(), s, "canonical form must round-trip");
            assert_eq!(Predicate::parse(&p.to_string()).unwrap(), p);
        }
    }

    #[test]
    fn parse_is_whitespace_lenient_and_normalizes_sets() {
        let p = Predicate::parse("tier  ==  gold &&  lang in { en,de , en }").unwrap();
        assert_eq!(p.to_string(), "tier == gold && lang in {de, en}");
        let q = Predicate::parse("year in [ 3..9 ]").unwrap();
        assert_eq!(q.to_string(), "year in [3 .. 9]");
    }

    #[test]
    fn invalid_predicates_are_rejected() {
        for s in [
            "",
            "tier",
            "tier == ",
            "tier == 9a",
            "9tier == gold",
            "tier in {}",
            "year in [9 .. 3]",
            "year in [a .. b]",
            "tier == gold &&",
            "tier = gold",
            "tier in (a, b)",
        ] {
            assert!(Predicate::parse(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn eval_semantics() {
        let r = rec(&[
            ("tier", Value::Str("gold".into())),
            ("year", Value::Int(2023)),
        ]);
        let t = |s: &str| Predicate::parse(s).unwrap().eval(&r);
        assert!(t("tier == gold"));
        assert!(!t("tier == silver"));
        assert!(t("tier in {silver, gold}"));
        assert!(t("year in [2020 .. 2023]"));
        assert!(!t("year in [2024 .. 2030]"));
        assert!(t("tier == gold && year == 2023"));
        assert!(!t("tier == gold && year == 1999"));
        // Missing field never matches; type mismatch never matches.
        assert!(!t("missing == gold"));
        assert!(!t("tier in [1 .. 9]"));
        assert!(!t("year == gold"));
    }

    #[test]
    fn fnv_is_canonical() {
        let a = Predicate::parse("lang in {en, de}").unwrap();
        let b = Predicate::parse("lang  in  { de , en }").unwrap();
        assert_eq!(a.fnv(), b.fnv());
        let c = Predicate::parse("lang in {de, fr}").unwrap();
        assert_ne!(a.fnv(), c.fnv());
    }
}
