//! # vdb — the vector-database product layer
//!
//! Turns the DNND pipeline's frozen anonymous snapshot into namespaced,
//! mutable, metadata-aware **collections** — the product surface the
//! source paper's Section 7 anticipates ("new data points may be
//! added/deleted, followed by a short graph refinement phase"):
//!
//! * [`Collection`] — a named namespace persisted through
//!   [`metall::Store`]: point vectors, k-NNG adjacency, one typed
//!   [`MetaRecord`] per point, tombstone/dead sets, and a graph epoch;
//! * [`Predicate`] — a small AND-of-terms filter language (`field == v`,
//!   `field in {…}`, `field in [lo .. hi]`) with a canonical
//!   `Display`↔`parse` round trip and an FNV-1a hash of the canonical
//!   form for cache keying;
//! * filter-pushed search — [`Collection::compile_mask`] compiles a
//!   predicate plus the live set into a [`dnnd::IdMask`] that the
//!   distributed query engine consults *inside* the beam expansion
//!   (best-heap admission at the home rank), never as a post-filter;
//! * online mutation — [`Collection::ingest`] appends at the tail via
//!   `nnd::insert_points` (the `examples/incremental_updates.rs` path),
//!   [`Collection::delete`] tombstones ids out of every mask immediately,
//!   and [`Collection::compact`] deterministically rewires the adjacency
//!   around the dead vertices without renumbering ids, bumping the epoch
//!   that invalidates the serving layer's cached results.
//!
//! The serving integration (mutations in the slot loop, PRF-scheduled
//! compaction, epoch-keyed cache) lives in `crates/serve`; the admin
//! surface is the `dnnd-vdb` CLI.

pub mod collection;
pub mod meta;
pub mod predicate;

pub use collection::{valid_namespace, Collection, CollectionStat, CompactReport};
pub use meta::MetaRecord;
pub use predicate::{valid_atom, valid_field, Predicate, Term, Value};
