//! Namespaced collections persisted through [`metall::Store`].
//!
//! Store layout for a namespace `NS` (all names under the `ns/` prefix so
//! collections co-exist with the pipeline's `meta/`, `dataset/`, `knng/`
//! keys in one store):
//!
//! ```text
//! ns/NS/info/k            u64     graph degree target
//! ns/NS/info/metric       String  metric name ("l2", "sql2", "cosine", "l1")
//! ns/NS/info/epoch        u64     graph epoch (bumped by ingest/compact)
//! ns/NS/points/{meta,data}        the point vectors (PointSet::save)
//! ns/NS/graph/{offsets,ids,dists} the adjacency (KnnGraph::save)
//! ns/NS/meta/{id}         MetaRecord  typed key→value fields per point
//! ns/NS/tombstones        Vec<u32>    deleted, not yet compacted
//! ns/NS/dead              Vec<u32>    deleted and compacted out
//! ```
//!
//! ## Id stability and the delete path
//!
//! Point ids are **stable for the life of the namespace**: a delete marks
//! the id as a tombstone (masked out of every search immediately) and a
//! later [`Collection::compact`] rewires the adjacency *around* the dead
//! vertex without renumbering the survivors — unlike `nnd::remove_points`,
//! which compacts ids and would invalidate every cached result, metadata
//! record, and in-flight query. Compacted-dead ids keep their vectors as
//! inert rows (never returned, never navigated through) and the namespace
//! only ever grows at the tail, which is exactly the contract
//! `nnd::insert_points` needs for the online ingest path.
//!
//! ## Determinism
//!
//! Every mutating operation is a pure function of `(collection state,
//! arguments)` — graph build and refinement use the seeded NN-Descent
//! passes, compaction repairs rows in `(distance, id)` order — so a replay
//! of the same mutation sequence reproduces the same store bytes and the
//! same search results, which is what lets the serving layer schedule
//! compaction as a PRF of the serve seed and still assert cross-rank
//! fingerprints.

use crate::meta::MetaRecord;
use crate::predicate::Predicate;
use dataset::set::{PointId, PointSet};
use dnnd::IdMask;
use metall::Store;
use nnd::{insert_points, KnnGraph, NnDescentParams};

/// True iff `s` is a valid namespace name: `[A-Za-z0-9_-]{1,32}`.
pub fn valid_namespace(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 32
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

fn key(ns: &str, tail: &str) -> String {
    format!("ns/{ns}/{tail}")
}

/// Dispatch a stored metric name to a monomorphized call.
macro_rules! with_metric {
    ($name:expr, $m:ident => $body:expr) => {
        match $name {
            "l2" => {
                let $m = dataset::L2;
                $body
            }
            "sql2" => {
                let $m = dataset::SquaredL2;
                $body
            }
            "cosine" => {
                let $m = dataset::Cosine;
                $body
            }
            "l1" => {
                let $m = dataset::L1;
                $body
            }
            other => return Err(format!("unknown metric {other:?}")),
        }
    };
}

/// Degree cap applied by the reverse-prune pass (`optimize`'s `m = 1.5`).
const PRUNE_MULT: f64 = 1.5;

/// Counters describing one namespace (the `stat` CLI verb and the
/// RunReport `vdb` section both read these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionStat {
    /// Namespace name.
    pub name: String,
    /// Total ids (live + tombstoned + compacted-dead).
    pub points: u64,
    /// Live (searchable) ids.
    pub live: u64,
    /// Deleted, awaiting compaction.
    pub tombstones: u64,
    /// Deleted and compacted out of the adjacency.
    pub dead: u64,
    /// Graph epoch (bumped by every ingest and compaction).
    pub epoch: u64,
    /// Vector dimension.
    pub dim: u64,
    /// Degree target.
    pub k: u64,
    /// Metric name.
    pub metric: String,
}

/// What one compaction pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Tombstones folded into the dead set.
    pub tombstones_cleared: u64,
    /// Live rows that lost at least one edge and were repaired.
    pub rows_repaired: u64,
    /// The epoch after the pass.
    pub epoch: u64,
}

/// An open namespaced collection: vectors + adjacency + per-point
/// metadata + the tombstone/dead sets, all round-tripping through one
/// [`metall::Store`].
#[derive(Debug, Clone)]
pub struct Collection {
    name: String,
    /// The point vectors (tail-append only; dead ids keep their rows).
    pub base: PointSet<Vec<f32>>,
    /// The adjacency over `base` (dead ids have empty rows post-compaction).
    pub graph: KnnGraph,
    /// Per-point metadata, indexed by id.
    pub meta: Vec<MetaRecord>,
    tombstones: Vec<PointId>,
    dead: Vec<PointId>,
    epoch: u64,
    k: usize,
    metric: String,
}

impl Collection {
    /// Build a new collection from `points` (+ one [`MetaRecord`] per
    /// point) and persist nothing yet — call [`Collection::save`]. The
    /// graph is a seeded NN-Descent build followed by the reverse-prune
    /// optimization, so creation is deterministic in `(points, k, seed)`.
    pub fn create(
        name: &str,
        points: PointSet<Vec<f32>>,
        meta: Vec<MetaRecord>,
        metric: &str,
        k: usize,
        seed: u64,
    ) -> Result<Collection, String> {
        if !valid_namespace(name) {
            return Err(format!(
                "invalid namespace {name:?}: want [A-Za-z0-9_-]{{1,32}}"
            ));
        }
        if meta.len() != points.len() {
            return Err(format!(
                "{} points but {} metadata records",
                points.len(),
                meta.len()
            ));
        }
        if points.is_empty() {
            return Err("cannot create an empty collection".into());
        }
        if k < 1 || k >= points.len() {
            return Err(format!("k = {k} out of range for {} points", points.len()));
        }
        let graph = with_metric!(metric, m => {
            let (g, _) = nnd::build(&points, &m, NnDescentParams::new(k).seed(seed));
            g.optimize(k, PRUNE_MULT)
        });
        Ok(Collection {
            name: name.to_string(),
            base: points,
            graph,
            meta,
            tombstones: Vec::new(),
            dead: Vec::new(),
            epoch: 0,
            k,
            metric: metric.to_string(),
        })
    }

    /// Open a collection previously [`Collection::save`]d into `store`.
    pub fn open(store: &Store, name: &str) -> Result<Collection, String> {
        if !Collection::exists(store, name) {
            return Err(format!("no namespace {name:?} in store"));
        }
        let err = |e: metall::StoreError| format!("namespace {name:?}: {e}");
        let k: u64 = store.get(&key(name, "info/k")).map_err(err)?;
        let metric: String = store.get(&key(name, "info/metric")).map_err(err)?;
        let epoch: u64 = store.get(&key(name, "info/epoch")).map_err(err)?;
        let base = PointSet::<Vec<f32>>::load(store, &key(name, "points")).map_err(err)?;
        let graph = KnnGraph::load(store, &key(name, "graph")).map_err(err)?;
        let tombstones: Vec<u32> = store.get(&key(name, "tombstones")).map_err(err)?;
        let dead: Vec<u32> = store.get(&key(name, "dead")).map_err(err)?;
        let mut meta = Vec::with_capacity(base.len());
        for id in 0..base.len() {
            meta.push(store.get(&key(name, &format!("meta/{id}"))).map_err(err)?);
        }
        if graph.len() != base.len() {
            return Err(format!(
                "namespace {name:?}: graph covers {} ids, base has {}",
                graph.len(),
                base.len()
            ));
        }
        Ok(Collection {
            name: name.to_string(),
            base,
            graph,
            meta,
            tombstones,
            dead,
            epoch,
            k: k as usize,
            metric,
        })
    }

    /// Persist the full collection state into `store` (overwrites the
    /// namespace's previous generation).
    pub fn save(&self, store: &mut Store) -> Result<(), String> {
        let err = |e: metall::StoreError| format!("namespace {:?}: {e}", self.name);
        store
            .put(&key(&self.name, "info/k"), &(self.k as u64))
            .map_err(err)?;
        store
            .put(&key(&self.name, "info/metric"), &self.metric)
            .map_err(err)?;
        store
            .put(&key(&self.name, "info/epoch"), &self.epoch)
            .map_err(err)?;
        self.base
            .save(store, &key(&self.name, "points"))
            .map_err(err)?;
        self.graph
            .save(store, &key(&self.name, "graph"))
            .map_err(err)?;
        store
            .put(&key(&self.name, "tombstones"), &self.tombstones)
            .map_err(err)?;
        store
            .put(&key(&self.name, "dead"), &self.dead)
            .map_err(err)?;
        for (id, rec) in self.meta.iter().enumerate() {
            store
                .put(&key(&self.name, &format!("meta/{id}")), rec)
                .map_err(err)?;
        }
        Ok(())
    }

    /// Does `store` hold a namespace called `name`?
    pub fn exists(store: &Store, name: &str) -> bool {
        valid_namespace(name) && store.contains(&key(name, "info/k"))
    }

    /// All namespace names in `store`, sorted.
    pub fn list(store: &Store) -> Vec<String> {
        let mut out: Vec<String> = store
            .names()
            .into_iter()
            .filter_map(|n| {
                let rest = n.strip_prefix("ns/")?;
                let (ns, tail) = rest.split_once('/')?;
                (tail == "info/k").then(|| ns.to_string())
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Namespace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Degree target.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Metric name.
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// Graph epoch: bumped by every adjacency rewrite (ingest, compact).
    /// The serving layer folds this into its result-cache key, so a bump
    /// invalidates every cached result for the namespace at once.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pending (uncompacted) tombstones, sorted.
    pub fn tombstones(&self) -> &[PointId] {
        &self.tombstones
    }

    /// Compacted-dead ids, sorted.
    pub fn dead(&self) -> &[PointId] {
        &self.dead
    }

    /// Live (searchable) id count.
    pub fn n_live(&self) -> usize {
        self.base.len() - self.tombstones.len() - self.dead.len()
    }

    /// Pending-tombstone fraction of the id space — the quantity the
    /// serving loop compares against its compaction watermark.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.base.is_empty() {
            0.0
        } else {
            self.tombstones.len() as f64 / self.base.len() as f64
        }
    }

    /// Is `id` live (present, not tombstoned, not dead)?
    pub fn is_live(&self, id: PointId) -> bool {
        (id as usize) < self.base.len()
            && self.tombstones.binary_search(&id).is_err()
            && self.dead.binary_search(&id).is_err()
    }

    /// Allow-list of live ids (tombstones and dead masked out).
    pub fn live_mask(&self) -> IdMask {
        let mut m = IdMask::all(self.base.len());
        for &t in &self.tombstones {
            m.deny(t);
        }
        for &d in &self.dead {
            m.deny(d);
        }
        m
    }

    /// Compile `pred` into the allow-list the filter-pushed search
    /// consumes: predicate over the metadata, intersected with the live
    /// set. `None` means unfiltered (live set only).
    pub fn compile_mask(&self, pred: Option<&Predicate>) -> IdMask {
        let live = self.live_mask();
        match pred {
            None => live,
            Some(p) => {
                let mut m = IdMask::from_fn(self.base.len(), |id| p.eval(&self.meta[id as usize]));
                m.intersect(&live);
                m
            }
        }
    }

    /// Append `points` (+ metadata) at the tail and refine the adjacency
    /// with the short NN-Descent pass from `nnd::insert_points` — the
    /// `examples/incremental_updates.rs` path. Returns the id range the
    /// new points received. Bumps the epoch.
    pub fn ingest(
        &mut self,
        points: Vec<Vec<f32>>,
        meta: Vec<MetaRecord>,
        refine_iters: usize,
    ) -> Result<std::ops::Range<PointId>, String> {
        if points.is_empty() {
            return Err("ingest of zero points".into());
        }
        if meta.len() != points.len() {
            return Err(format!(
                "{} points but {} metadata records",
                points.len(),
                meta.len()
            ));
        }
        let n_old = self.base.len();
        let mut all = self.base.points().to_vec();
        for p in &points {
            if p.len() != self.base.dim() {
                return Err(format!(
                    "dimension mismatch: collection is {}-d, point is {}-d",
                    self.base.dim(),
                    p.len()
                ));
            }
        }
        all.extend(points);
        let new_base = PointSet::new(all);
        let params = NnDescentParams::new(self.k).seed(self.epoch.wrapping_mul(0x9E37_79B9) | 1);
        let graph = with_metric!(self.metric.as_str(), m => {
            let (g, _) = insert_points(&self.graph, &self.base, &new_base, &m, params, refine_iters);
            g.optimize(self.k, PRUNE_MULT)
        });
        self.base = new_base;
        self.graph = graph;
        self.meta.extend(meta);
        self.epoch += 1;
        Ok(n_old as PointId..self.base.len() as PointId)
    }

    /// Tombstone `ids`: they disappear from every mask (and therefore
    /// every result) immediately; the adjacency is untouched until the
    /// next [`Collection::compact`]. Already-deleted ids are rejected.
    /// Does not bump the epoch — masking, not rewiring.
    pub fn delete(&mut self, ids: &[PointId]) -> Result<usize, String> {
        for &id in ids {
            if (id as usize) >= self.base.len() {
                return Err(format!("delete of unknown id {id}"));
            }
            if !self.is_live(id) {
                return Err(format!("delete of already-deleted id {id}"));
            }
        }
        let mut added = self.tombstones.clone();
        added.extend_from_slice(ids);
        added.sort_unstable();
        added.dedup();
        let n = added.len() - self.tombstones.len();
        self.tombstones = added;
        Ok(n)
    }

    /// Deterministic compaction: rewire the adjacency around every
    /// tombstoned vertex without renumbering ids, then fold the tombstones
    /// into the dead set and bump the epoch.
    ///
    /// 1. every dead/tombstoned row is emptied and its id dropped from
    ///    every live row;
    /// 2. live rows that shrank are repaired from their surviving
    ///    neighbors' neighborhoods, scored and admitted in `(distance,
    ///    id)` order (the same local-repair rule as `nnd::remove_points`,
    ///    minus the renumbering);
    /// 3. the existing reverse-merge + degree-prune optimization pass
    ///    (`KnnGraph::optimize`) restores reachability and the degree cap.
    pub fn compact(&mut self) -> Result<CompactReport, String> {
        let n = self.base.len();
        let mut gone = vec![false; n];
        for &t in self.tombstones.iter().chain(&self.dead) {
            gone[t as usize] = true;
        }
        let cleared = self.tombstones.len() as u64;
        let mut rows_repaired = 0u64;
        let rows: Vec<Vec<(PointId, f32)>> = with_metric!(self.metric.as_str(), m => {
            let metric = m;
            (0..n as PointId)
                .map(|v| {
                    if gone[v as usize] {
                        return Vec::new();
                    }
                    let mut row: Vec<(PointId, f32)> = self
                        .graph
                        .neighbors(v)
                        .iter()
                        .filter(|&&(u, _)| !gone[u as usize])
                        .copied()
                        .collect();
                    if row.len() < self.graph.neighbors(v).len() && row.len() < self.k {
                        rows_repaired += 1;
                        // Candidates: survivors two hops out, via either a
                        // surviving or a tombstoned intermediate (dead
                        // vertices still have rows until step 1 lands).
                        let mut cand: Vec<PointId> = Vec::new();
                        for &(u, _) in self.graph.neighbors(v) {
                            for &(w, _) in self.graph.neighbors(u) {
                                if w != v
                                    && !gone[w as usize]
                                    && !row.iter().any(|&(x, _)| x == w)
                                    && !cand.contains(&w)
                                {
                                    cand.push(w);
                                }
                            }
                        }
                        let me = self.base.point(v);
                        let mut scored: Vec<(PointId, f32)> = cand
                            .into_iter()
                            .map(|w| (w, dataset::Metric::distance(&metric, me, self.base.point(w))))
                            .collect();
                        scored
                            .sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
                        for (w, d) in scored {
                            if row.len() >= self.k {
                                break;
                            }
                            row.push((w, d));
                        }
                        row.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
                    } else if row.len() < self.graph.neighbors(v).len() {
                        rows_repaired += 1;
                    }
                    row
                })
                .collect()
        });
        self.graph = KnnGraph::from_rows(rows).optimize(self.k, PRUNE_MULT);
        let mut dead = std::mem::take(&mut self.dead);
        dead.extend(std::mem::take(&mut self.tombstones));
        dead.sort_unstable();
        self.dead = dead;
        self.epoch += 1;
        Ok(CompactReport {
            tombstones_cleared: cleared,
            rows_repaired,
            epoch: self.epoch,
        })
    }

    /// Snapshot the counters for `stat`/reporting.
    pub fn stat(&self) -> CollectionStat {
        CollectionStat {
            name: self.name.clone(),
            points: self.base.len() as u64,
            live: self.n_live() as u64,
            tombstones: self.tombstones.len() as u64,
            dead: self.dead.len() as u64,
            epoch: self.epoch,
            dim: self.base.dim() as u64,
            k: self.k as u64,
            metric: self.metric.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Value;
    use dataset::synth::{gaussian_mixture, MixtureParams};
    use dataset::{brute_force_queries, mean_recall, L2};
    use nnd::{search_batch, SearchParams};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let pid = std::process::id();
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let dir = std::env::temp_dir().join(format!("vdb-{tag}-{pid}-{t}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_meta(n: usize) -> Vec<MetaRecord> {
        (0..n)
            .map(|i| {
                let mut r = MetaRecord::new();
                r.set(
                    "tier",
                    Value::Str(if i % 3 == 0 { "gold" } else { "base" }.into()),
                )
                .unwrap();
                r.set("year", Value::Int(2000 + (i % 25) as i64)).unwrap();
                r
            })
            .collect()
    }

    fn sample_collection(n: usize) -> Collection {
        let pts = gaussian_mixture(MixtureParams::embedding_like(n, 8), 33);
        Collection::create("test", pts, sample_meta(n), "l2", 8, 7).unwrap()
    }

    #[test]
    fn create_validates() {
        let pts = gaussian_mixture(MixtureParams::embedding_like(50, 4), 1);
        assert!(Collection::create("bad name", pts.clone(), sample_meta(50), "l2", 4, 1).is_err());
        assert!(Collection::create("ok", pts.clone(), sample_meta(49), "l2", 4, 1).is_err());
        assert!(Collection::create("ok", pts.clone(), sample_meta(50), "what", 4, 1).is_err());
        assert!(Collection::create("ok", pts, sample_meta(50), "l2", 99, 1).is_err());
    }

    #[test]
    fn save_open_round_trip() {
        let col = sample_collection(120);
        let dir = tmpdir("roundtrip");
        let mut store = Store::create(&dir).unwrap();
        col.save(&mut store).unwrap();
        assert!(Collection::exists(&store, "test"));
        assert_eq!(Collection::list(&store), vec!["test".to_string()]);
        let back = Collection::open(&store, "test").unwrap();
        assert_eq!(back.base.points(), col.base.points());
        assert_eq!(back.graph.neighbor_ids(), col.graph.neighbor_ids());
        assert_eq!(back.meta, col.meta);
        assert_eq!(back.epoch(), col.epoch());
        assert_eq!(back.k(), col.k());
        assert_eq!(back.metric(), col.metric());
        assert!(Collection::open(&store, "nope").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn masks_respect_predicate_and_tombstones() {
        let mut col = sample_collection(90);
        let pred = Predicate::parse("tier == gold").unwrap();
        let mask = col.compile_mask(Some(&pred));
        assert_eq!(mask.allowed(), 30);
        col.delete(&[0, 3]).unwrap(); // both gold (multiples of 3)
        let mask = col.compile_mask(Some(&pred));
        assert_eq!(mask.allowed(), 28);
        assert!(!mask.allows(0) && !mask.allows(3) && mask.allows(6));
        let live = col.compile_mask(None);
        assert_eq!(live.allowed(), 88);
        assert!(col.delete(&[0]).is_err(), "double delete rejected");
        assert!(col.delete(&[9999]).is_err(), "unknown id rejected");
    }

    #[test]
    fn ingest_appends_at_tail_and_bumps_epoch() {
        let mut col = sample_collection(150);
        let extra = gaussian_mixture(MixtureParams::embedding_like(30, 8), 99);
        let range = col
            .ingest(extra.points().to_vec(), sample_meta(30), 2)
            .unwrap();
        assert_eq!(range, 150..180);
        assert_eq!(col.base.len(), 180);
        assert_eq!(col.graph.len(), 180);
        assert_eq!(col.meta.len(), 180);
        assert_eq!(col.epoch(), 1);
        // Quality: the refined graph still answers well.
        let queries = std::sync::Arc::new(PointSet::new(col.base.points()[..20].to_vec()));
        let base = std::sync::Arc::new(col.base.clone());
        let truth = brute_force_queries(&base, &queries, &L2, 8);
        let out = search_batch(
            &col.graph,
            &col.base,
            &L2,
            &queries,
            SearchParams::new(8).epsilon(0.2).entry_candidates(32),
        );
        let recall = mean_recall(&out.ids, &truth);
        assert!(recall > 0.85, "post-ingest recall {recall}");
        // Dimension mismatch is rejected.
        assert!(col.ingest(vec![vec![0.0; 3]], sample_meta(1), 1).is_err());
    }

    #[test]
    fn compact_is_id_stable_and_never_resurrects() {
        let mut col = sample_collection(160);
        let doomed: Vec<PointId> = (0..160).step_by(9).collect();
        col.delete(&doomed).unwrap();
        assert!(col.tombstone_ratio() > 0.1);
        let before_len = col.base.len();
        let rep = col.compact().unwrap();
        assert_eq!(rep.tombstones_cleared, doomed.len() as u64);
        assert_eq!(rep.epoch, 1);
        assert_eq!(col.base.len(), before_len, "ids are stable");
        assert_eq!(col.tombstones().len(), 0);
        assert_eq!(col.dead(), &doomed[..]);
        assert!((col.tombstone_ratio() - 0.0).abs() < 1e-12);
        // No live row references a dead vertex; dead rows are empty.
        for v in 0..col.graph.len() as PointId {
            if col.is_live(v) {
                for &(u, _) in col.graph.neighbors(v) {
                    assert!(col.is_live(u), "live row {v} references dead {u}");
                }
            } else {
                assert!(col.graph.neighbors(v).is_empty(), "dead row {v} not empty");
            }
        }
        // Quality after compaction: live queries still find live truth.
        let live_ids: Vec<PointId> = (0..160).filter(|&i| col.is_live(i)).collect();
        let sub = PointSet::new(
            live_ids
                .iter()
                .map(|&i| col.base.point(i).clone())
                .collect::<Vec<_>>(),
        );
        let queries = std::sync::Arc::new(PointSet::new(sub.points()[..20].to_vec()));
        let mut truth = brute_force_queries(&std::sync::Arc::new(sub), &queries, &L2, 6);
        for row in &mut truth.ids {
            for id in row.iter_mut() {
                *id = live_ids[*id as usize];
            }
        }
        let out = search_batch(
            &col.graph,
            &col.base,
            &L2,
            &queries,
            SearchParams::new(6).epsilon(0.2).entry_candidates(32),
        );
        let recall = mean_recall(&out.ids, &truth);
        assert!(recall > 0.8, "post-compaction recall {recall}");
    }

    #[test]
    fn compaction_is_deterministic() {
        let run = || {
            let mut col = sample_collection(140);
            col.delete(&(0..140).step_by(7).collect::<Vec<_>>())
                .unwrap();
            col.compact().unwrap();
            col.graph.neighbor_ids()
        };
        assert_eq!(run(), run());
    }
}
