//! Property tests of the predicate language's canonical form:
//! `parse(display(p)) == p` for every valid predicate, and the FNV cache
//! hash is a pure function of the canonical string.

use proptest::prelude::*;
use vdb::{Predicate, Term, Value};

const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
const FIELD_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
const ATOM_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";

fn ident(alphabet: &'static [u8]) -> impl Strategy<Value = String> {
    (
        0..FIRST.len(),
        prop::collection::vec(0..alphabet.len(), 0..6),
    )
        .prop_map(move |(first, rest)| {
            let mut s = String::new();
            s.push(FIRST[first] as char);
            for i in rest {
                s.push(alphabet[i] as char);
            }
            s
        })
}

fn value_strategy() -> BoxedStrategy<Value> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        ident(ATOM_REST).prop_map(|a| Value::atom(a).unwrap()),
    ]
    .boxed()
}

fn term_strategy() -> BoxedStrategy<Term> {
    prop_oneof![
        (ident(FIELD_REST), value_strategy()).prop_map(|(f, v)| Term::eq(f, v).unwrap()),
        (
            ident(FIELD_REST),
            prop::collection::vec(value_strategy(), 1..5)
        )
            .prop_map(|(f, vs)| Term::is_in(f, vs).unwrap()),
        (ident(FIELD_REST), -5_000i64..5_000, 0i64..5_000).prop_map(|(f, lo, span)| Term::range(
            f,
            lo,
            lo + span
        )
        .unwrap()),
    ]
    .boxed()
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    prop::collection::vec(term_strategy(), 1..5).prop_map(|ts| Predicate::new(ts).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_round_trip(p in predicate_strategy()) {
        let text = p.to_string();
        let back = Predicate::parse(&text)
            .unwrap_or_else(|e| panic!("canonical form {text:?} failed to parse: {e}"));
        prop_assert_eq!(&back, &p, "parse(display(p)) != p for {}", text);
        // Display is a fixed point: re-displaying the reparse is identical.
        prop_assert_eq!(back.to_string(), text);
        // The cache hash is a pure function of the canonical string.
        prop_assert_eq!(back.fnv(), p.fnv());
    }
}
