//! Lock-free log-linear histograms with percentile queries.
//!
//! Values 0..15 are counted exactly; larger values land in log-linear
//! buckets (16 linear sub-buckets per power of two), bounding the relative
//! quantization error of percentile queries at 1/16 ≈ 6.3%. Recording is a
//! single relaxed fetch-add, safe from any thread.

use std::sync::atomic::{AtomicU64, Ordering};

const LINEAR_CUTOFF: u64 = 16;
const SUB_BUCKETS: usize = 16;
/// Majors cover bit positions 4..=63.
const N_BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - 4) * SUB_BUCKETS;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let major = 63 - v.leading_zeros() as usize; // >= 4
        let minor = ((v >> (major - 4)) & 0xF) as usize;
        LINEAR_CUTOFF as usize + (major - 4) * SUB_BUCKETS + minor
    }
}

/// Lower bound of the value range covered by `index`.
fn bucket_value(index: usize) -> u64 {
    if index < LINEAR_CUTOFF as usize {
        index as u64
    } else {
        let rest = index - LINEAR_CUTOFF as usize;
        let major = rest / SUB_BUCKETS + 4;
        let minor = (rest % SUB_BUCKETS) as u64;
        (16 + minor) << (major - 4)
    }
}

/// Concurrent histogram of `u64` samples.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets = (0..N_BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Record `n` occurrences of the same value.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time copy for queries and export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
        }
    }
}

/// Immutable histogram state with summary-statistic queries.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub min: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Value at quantile `q` in `[0, 1]` (e.g. `0.5` = median), resolved to
    /// the lower bound of the containing bucket (≤ 6.3% relative error).
    /// Reports 0 on an empty histogram; use [`Self::quantile_opt`] to
    /// distinguish "no samples" from a genuine zero-valued percentile.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_opt(q).unwrap_or(0)
    }

    /// Value at quantile `q`, or `None` when the histogram holds no
    /// samples (rather than the lowest bucket's bound).
    pub fn quantile_opt(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_value(i).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_is_monotone() {
        let mut last = 0;
        for v in [0u64, 1, 5, 15, 16, 17, 100, 1000, 1 << 20, u64::MAX / 2] {
            let idx = bucket_index(v);
            let lo = bucket_value(idx);
            assert!(lo <= v, "lower bound {lo} must not exceed {v}");
            assert!(idx >= last, "indices must be monotone in value");
            last = idx;
        }
        // Lower bound quantization error is below 1/16.
        for v in [100u64, 999, 12345, 1 << 30] {
            let lo = bucket_value(bucket_index(v));
            assert!((v - lo) as f64 / v as f64 <= 1.0 / 16.0 + 1e-9);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 16);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 15);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 15);
        assert_eq!(s.p50(), 7); // 8th of 16 samples, 1-based rank ceil(0.5*16)=8 -> value 7
    }

    #[test]
    fn uniform_distribution_percentiles() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        let tol = |exact: f64, got: u64| {
            let rel = (exact - got as f64).abs() / exact;
            assert!(rel <= 0.07, "exact {exact} got {got} (rel {rel})");
        };
        tol(5_000.0, s.p50());
        tol(9_500.0, s.p95());
        tol(9_900.0, s.p99());
        assert!((s.mean() - 5_000.5).abs() < 1e-6);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10_000);
    }

    #[test]
    fn point_mass_distribution() {
        let h = Histogram::new();
        h.record_n(42, 1_000);
        let s = h.snapshot();
        // 42 = (16+5)<<1 is itself a bucket lower bound, so p50 is exact.
        assert_eq!(s.p50(), 42);
        assert_eq!(s.max, 42);
        assert_eq!(s.min, 42);
        assert_eq!(s.quantile(1.0), 42); // clamped to observed max
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn two_mass_distribution_hits_both_modes() {
        let h = Histogram::new();
        h.record_n(10, 90); // 90% of mass at 10
        h.record_n(1_000, 10); // 10% at 1000
        let s = h.snapshot();
        assert_eq!(s.p50(), 10);
        assert!(s.p95() >= 960 && s.p95() <= 1_000);
        assert!(s.p99() >= 960 && s.p99() <= 1_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn empty_histogram_percentiles_are_absent() {
        // `quantile_opt` distinguishes "no samples" from a real 0: the
        // plain accessors report 0, never the lowest bucket's bound.
        let s = Histogram::new().snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile_opt(q), None);
            assert_eq!(s.quantile(q), 0);
        }
        // A genuine zero-valued sample is distinguishable.
        let h = Histogram::new();
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.quantile_opt(0.5), Some(0));
        assert!(!s.is_empty());
    }

    #[test]
    fn bucket_boundary_values_are_pinned() {
        // Exact bucket lower bounds must be reported exactly: the first
        // sub-bucket boundaries after the linear range...
        for v in [16u64, 17, 31, 42, 64, 96, 1 << 20, (16 + 5) << 10] {
            assert_eq!(bucket_value(bucket_index(v)), v, "bound {v} not exact");
            let h = Histogram::new();
            h.record_n(v, 100);
            let s = h.snapshot();
            assert_eq!(s.p50(), v);
            assert_eq!(s.p99(), v);
        }
        // ...while interior values resolve to the bound below, clamped to
        // the observed min so point masses stay exact.
        assert_eq!(bucket_value(bucket_index(43)), 42);
        let h = Histogram::new();
        h.record_n(43, 10);
        assert_eq!(h.snapshot().p50(), 43); // min-clamped, not 42
        let h = Histogram::new();
        h.record_n(43, 10);
        h.record(16); // min no longer clamps 43's bucket bound
        assert_eq!(h.snapshot().p50(), 42);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for hh in handles {
            hh.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 39_999);
    }
}
