//! Chrome-trace (Trace Event Format) export, loadable in Perfetto /
//! `chrome://tracing`.
//!
//! One track per simulated rank (`pid` 0, `tid` = rank). Matched
//! begin/end pairs become complete (`"ph":"X"`) events on the wall-clock
//! timeline — per-rank wall time is what shows real thread behavior —
//! with the virtual simulation timestamps carried in `args` (`virt_us`,
//! `virt_dur_us`). Instants become `"ph":"i"` events. Unterminated spans
//! are closed at the rank's last observed wall time and flagged
//! `"unterminated": true`.

use crate::json::JsonValue as J;
use crate::ring::EventKind;
use crate::tracer::Tracer;

fn us(ns: u64) -> J {
    J::Num(ns as f64 / 1_000.0)
}

/// Build the trace document for `tracer` as a [`JsonValue`](crate::json::JsonValue).
pub fn chrome_trace(tracer: &Tracer) -> J {
    let mut events: Vec<J> = Vec::new();

    for rank in 0..tracer.n_ranks() {
        // Track metadata: readable names and stable top-to-bottom order.
        events.push(J::Obj(vec![
            ("ph".into(), J::str("M")),
            ("name".into(), J::str("thread_name")),
            ("pid".into(), J::Int(0)),
            ("tid".into(), J::uint(rank as u64)),
            (
                "args".into(),
                J::Obj(vec![("name".into(), J::str(format!("rank {rank}")))]),
            ),
        ]));
        events.push(J::Obj(vec![
            ("ph".into(), J::str("M")),
            ("name".into(), J::str("thread_sort_index")),
            ("pid".into(), J::Int(0)),
            ("tid".into(), J::uint(rank as u64)),
            (
                "args".into(),
                J::Obj(vec![("sort_index".into(), J::uint(rank as u64))]),
            ),
        ]));

        let rank_events = tracer.events(rank);
        let last_wall = rank_events.last().map(|e| e.wall_ns).unwrap_or(0);
        // Stack of open spans: (name, wall_ns, virt_ns, arg).
        let mut open: Vec<(&'static str, u64, u64, u64)> = Vec::new();

        let complete = |name: &str,
                        b_wall: u64,
                        b_virt: u64,
                        arg: u64,
                        e_wall: u64,
                        e_virt: u64,
                        term: bool| {
            let mut args = vec![
                ("virt_us".into(), us(b_virt)),
                ("virt_dur_us".into(), us(e_virt.saturating_sub(b_virt))),
            ];
            if arg != 0 {
                args.push(("arg".into(), J::uint(arg)));
            }
            if !term {
                args.push(("unterminated".into(), J::Bool(true)));
            }
            J::Obj(vec![
                ("ph".into(), J::str("X")),
                ("name".into(), J::str(name)),
                ("pid".into(), J::Int(0)),
                ("tid".into(), J::uint(rank as u64)),
                ("ts".into(), us(b_wall)),
                ("dur".into(), us(e_wall.saturating_sub(b_wall))),
                ("args".into(), J::Obj(args)),
            ])
        };

        for ev in &rank_events {
            match ev.kind {
                EventKind::Begin => open.push((ev.name, ev.wall_ns, ev.virt_ns, ev.arg)),
                EventKind::End => {
                    // Well-nested instrumentation means the matching span is
                    // on top; if ring wrap-around ate the Begin, pop nothing
                    // and emit a zero-length marker instead.
                    if let Some(pos) = open.iter().rposition(|(n, ..)| *n == ev.name) {
                        // Anything opened after the match lost its End to
                        // wrap-around; close it at this point.
                        while open.len() > pos + 1 {
                            let (n, bw, bv, a) = open.pop().unwrap();
                            events.push(complete(n, bw, bv, a, ev.wall_ns, ev.virt_ns, false));
                        }
                        let (n, bw, bv, a) = open.pop().unwrap();
                        events.push(complete(n, bw, bv, a, ev.wall_ns, ev.virt_ns, true));
                    } else {
                        events.push(complete(
                            ev.name, ev.wall_ns, ev.virt_ns, ev.arg, ev.wall_ns, ev.virt_ns, false,
                        ));
                    }
                }
                EventKind::Instant => {
                    let mut args = vec![("virt_us".into(), us(ev.virt_ns))];
                    if ev.arg != 0 {
                        args.push(("arg".into(), J::uint(ev.arg)));
                    }
                    events.push(J::Obj(vec![
                        ("ph".into(), J::str("i")),
                        ("s".into(), J::str("t")),
                        ("name".into(), J::str(ev.name)),
                        ("pid".into(), J::Int(0)),
                        ("tid".into(), J::uint(rank as u64)),
                        ("ts".into(), us(ev.wall_ns)),
                        ("args".into(), J::Obj(args)),
                    ]));
                }
                EventKind::FlowSend | EventKind::FlowRecv => {
                    // Cross-rank arrow halves: Perfetto pairs them on
                    // (cat, id, name), so both sides derive the display
                    // name from the same tag table. The id is emitted as
                    // a hex string — packed flow ids can exceed 2^53 and
                    // must not round through a JSON double.
                    let fname = tracer
                        .tag_name(ev.arg2)
                        .unwrap_or_else(|| ev.name.to_string());
                    let send = ev.kind == EventKind::FlowSend;
                    let mut obj = vec![("ph".into(), J::str(if send { "s" } else { "f" }))];
                    if !send {
                        // Bind to the enclosing slice (the dispatch span).
                        obj.push(("bp".into(), J::str("e")));
                    }
                    obj.extend([
                        ("cat".into(), J::str("flow")),
                        ("name".into(), J::str(&fname)),
                        ("id".into(), J::str(format!("{:016x}", ev.arg))),
                        ("pid".into(), J::Int(0)),
                        ("tid".into(), J::uint(rank as u64)),
                        ("ts".into(), us(ev.wall_ns)),
                        (
                            "args".into(),
                            J::Obj(vec![
                                ("virt_us".into(), us(ev.virt_ns)),
                                ("tag".into(), J::uint(ev.arg2)),
                            ]),
                        ),
                    ]);
                    events.push(J::Obj(obj));
                }
                EventKind::AsyncBegin | EventKind::AsyncEnd => {
                    // Nestable async span halves: Perfetto pairs them on
                    // (cat, id, name). The serving layer opens one per
                    // query at arrival and closes it at answer/shed, so a
                    // query's lifecycle shows as one span joining the
                    // dispatch flow arrows. Ids share the hex-string
                    // encoding with flow events (they reuse the same
                    // > 2^53 id namespace).
                    let begin = ev.kind == EventKind::AsyncBegin;
                    events.push(J::Obj(vec![
                        ("ph".into(), J::str(if begin { "b" } else { "e" })),
                        ("cat".into(), J::str("query_lifecycle")),
                        ("name".into(), J::str(ev.name)),
                        ("id".into(), J::str(format!("{:016x}", ev.arg))),
                        ("pid".into(), J::Int(0)),
                        ("tid".into(), J::uint(rank as u64)),
                        ("ts".into(), us(ev.wall_ns)),
                        (
                            "args".into(),
                            J::Obj(vec![("virt_us".into(), us(ev.virt_ns))]),
                        ),
                    ]));
                }
            }
        }
        // Spans still open at the end of the run.
        while let Some((n, bw, bv, a)) = open.pop() {
            events.push(complete(n, bw, bv, a, last_wall, 0, false));
        }
    }

    // Continuous-telemetry gauges become counter ("C") tracks. Series
    // points carry only virtual timestamps, so they live under their own
    // process (pid 1, labeled) instead of the wall-clock span timeline.
    let series = tracer.series().snapshot();
    if !series.is_empty() {
        events.push(J::Obj(vec![
            ("ph".into(), J::str("M")),
            ("name".into(), J::str("process_name")),
            ("pid".into(), J::Int(1)),
            ("tid".into(), J::Int(0)),
            (
                "args".into(),
                J::Obj(vec![("name".into(), J::str("telemetry (virtual time)"))]),
            ),
        ]));
    }
    for s in &series {
        let track = format!("{} r{}", s.name, s.rank);
        for p in &s.points {
            events.push(J::Obj(vec![
                ("ph".into(), J::str("C")),
                ("name".into(), J::str(&track)),
                ("pid".into(), J::Int(1)),
                ("tid".into(), J::uint(s.rank)),
                ("ts".into(), us(p.t_ns)),
                (
                    "args".into(),
                    J::Obj(vec![("value".into(), J::Num(p.value))]),
                ),
            ]));
        }
    }

    J::Obj(vec![
        ("traceEvents".into(), J::Arr(events)),
        ("displayTimeUnit".into(), J::str("ms")),
        (
            "otherData".into(),
            J::Obj(vec![
                ("producer".into(), J::str("dnnd-repro obs")),
                (
                    "dropped_events".into(),
                    J::uint(tracer.dropped_events() as u64),
                ),
                ("n_ranks".into(), J::uint(tracer.n_ranks() as u64)),
            ]),
        ),
    ])
}

/// Serialize the trace for `tracer` to a JSON string.
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    chrome_trace(tracer).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue as J;

    fn spans_named<'a>(doc: &'a J, name: &str) -> Vec<&'a J> {
        doc.get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| {
                e.get("name").and_then(J::as_str) == Some(name)
                    && e.get("ph").and_then(J::as_str) == Some("X")
            })
            .collect()
    }

    #[test]
    fn matched_spans_become_complete_events() {
        let t = Tracer::new(2);
        t.begin(0, "outer", 0);
        t.begin_arg(0, "inner", 100, 5);
        t.end(0, "inner", 400);
        t.end(0, "outer", 500);
        t.instant(1, "flush", 200, 64);

        let doc = chrome_trace(&t);
        let inner = spans_named(&doc, "inner");
        assert_eq!(inner.len(), 1);
        let args = inner[0].get("args").unwrap();
        assert_eq!(args.get("virt_us").unwrap().as_f64().unwrap(), 0.1);
        assert_eq!(args.get("virt_dur_us").unwrap().as_f64().unwrap(), 0.3);
        assert_eq!(args.get("arg").unwrap().as_u64(), Some(5));
        assert!(args.get("unterminated").is_none());
        assert_eq!(spans_named(&doc, "outer").len(), 1);

        // The instant landed on rank 1's track.
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let inst: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(J::as_str) == Some("i"))
            .collect();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].get("tid").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn one_thread_name_track_per_rank() {
        let t = Tracer::new(3);
        let doc = chrome_trace(&t);
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let names: Vec<_> = evs
            .iter()
            .filter(|e| e.get("name").and_then(J::as_str) == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(names, vec!["rank 0", "rank 1", "rank 2"]);
    }

    #[test]
    fn unterminated_span_is_flagged() {
        let t = Tracer::new(1);
        t.begin(0, "leaky", 0);
        t.instant(0, "tick", 10, 0);
        let doc = chrome_trace(&t);
        let leaky = spans_named(&doc, "leaky");
        assert_eq!(leaky.len(), 1);
        assert_eq!(
            leaky[0]
                .get("args")
                .unwrap()
                .get("unterminated")
                .and_then(J::as_bool),
            Some(true)
        );
    }

    #[test]
    fn series_become_counter_events_on_virtual_timeline() {
        let t = Tracer::new(2);
        t.series().record(1, "send_buf_bytes", 10_000, 128.0);
        t.series().record(1, "send_buf_bytes", 20_000, 64.0);
        let doc = chrome_trace(&t);
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let counters: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(J::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        assert_eq!(
            counters[0].get("name").and_then(J::as_str),
            Some("send_buf_bytes r1")
        );
        assert_eq!(counters[0].get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(counters[0].get("ts").unwrap().as_f64(), Some(10.0));
        assert_eq!(
            counters[1]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(64.0)
        );
    }

    #[test]
    fn flow_halves_pair_on_id_and_name() {
        let t = Tracer::new(2);
        t.name_tag(14, "Type 1");
        let id = (14u64 << 48) | 7;
        t.flow_send(0, "flow", 100, id, 14);
        t.flow_recv(1, "flow", 200, id, 14);
        t.flow_send(0, "flow", 300, 42, 99); // unnamed tag falls back
        let doc = chrome_trace(&t);
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let flows: Vec<_> = evs
            .iter()
            .filter(|e| e.get("cat").and_then(J::as_str) == Some("flow"))
            .collect();
        assert_eq!(flows.len(), 3);
        let s = flows
            .iter()
            .find(|e| {
                e.get("ph").and_then(J::as_str) == Some("s")
                    && e.get("tid").unwrap().as_u64() == Some(0)
                    && e.get("name").and_then(J::as_str) == Some("Type 1")
            })
            .expect("send half present");
        let f = flows
            .iter()
            .find(|e| e.get("ph").and_then(J::as_str) == Some("f"))
            .expect("recv half present");
        // Matching identity triple, and the recv half binds to its
        // enclosing slice.
        assert_eq!(s.get("id").unwrap().as_str(), f.get("id").unwrap().as_str());
        assert_eq!(
            s.get("name").unwrap().as_str(),
            f.get("name").unwrap().as_str()
        );
        assert_eq!(f.get("bp").and_then(J::as_str), Some("e"));
        assert_eq!(f.get("tid").unwrap().as_u64(), Some(1));
        // Ids are hex strings, immune to double rounding.
        assert_eq!(s.get("id").unwrap().as_str().unwrap().len(), 16);
        // The unnamed tag keeps the event's own name.
        assert!(flows
            .iter()
            .any(|e| e.get("name").and_then(J::as_str) == Some("flow")));
    }

    #[test]
    fn async_span_halves_pair_on_id_and_name() {
        let t = Tracer::new(1);
        let id = 0xFF51_0000_0000_0000u64 | 3;
        t.async_begin(0, "query", 100, id);
        t.async_end(0, "query", 900, id);
        let doc = chrome_trace(&t);
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let asyncs: Vec<_> = evs
            .iter()
            .filter(|e| e.get("cat").and_then(J::as_str) == Some("query_lifecycle"))
            .collect();
        assert_eq!(asyncs.len(), 2);
        let b = asyncs
            .iter()
            .find(|e| e.get("ph").and_then(J::as_str) == Some("b"))
            .expect("begin half present");
        let e = asyncs
            .iter()
            .find(|e| e.get("ph").and_then(J::as_str) == Some("e"))
            .expect("end half present");
        assert_eq!(b.get("id").unwrap().as_str(), e.get("id").unwrap().as_str());
        assert_eq!(b.get("id").unwrap().as_str().unwrap().len(), 16);
        assert_eq!(b.get("name").and_then(J::as_str), Some("query"));
    }

    #[test]
    fn export_parses_as_json() {
        let t = Tracer::new(2);
        t.begin(0, "a \"quoted\" name", 0);
        t.end(0, "a \"quoted\" name", 10);
        let text = chrome_trace_json(&t);
        let doc = J::parse(&text).unwrap();
        assert!(doc.get("traceEvents").is_some());
        assert_eq!(
            doc.get("otherData")
                .unwrap()
                .get("dropped_events")
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }
}
