//! Single-producer lock-free ring buffers, one per simulated rank.
//!
//! Each rank thread is the *only* writer into its buffer; readers
//! (trace export) run strictly after the rank threads have been joined,
//! so a write is ordered before every read by the join. The atomic head
//! uses `Release`/`Acquire` anyway, which additionally makes concurrent
//! best-effort peeking (e.g. a progress printer) safe for the head count
//! itself.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Opening edge of a span.
    Begin,
    /// Closing edge of a span (matches the most recent unmatched `Begin`
    /// with the same name on the same rank).
    End,
    /// Zero-duration point event.
    Instant,
    /// Origin half of a causal flow arrow (Chrome-trace `ph:"s"`); `arg`
    /// is the flow id pairing it with a [`EventKind::FlowRecv`], `arg2`
    /// the message tag.
    FlowSend,
    /// Terminating half of a causal flow arrow (Chrome-trace `ph:"f"`).
    FlowRecv,
    /// Opening edge of an async (nestable) span (Chrome-trace `ph:"b"`);
    /// `arg` is the async id pairing it with an [`EventKind::AsyncEnd`].
    /// Unlike `Begin`/`End`, async spans may overlap freely on one track —
    /// the serving layer uses them for per-query lifecycle spans.
    AsyncBegin,
    /// Closing edge of an async span (Chrome-trace `ph:"e"`).
    AsyncEnd,
}

/// One recorded event. `Copy` and fixed-size so the hot path is a plain
/// slot write.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    pub kind: EventKind,
    /// Span / event name. `&'static str` keeps recording allocation-free;
    /// dynamic detail (iteration numbers, byte counts) goes in `arg`.
    pub name: &'static str,
    /// Wall-clock nanoseconds since the tracer epoch.
    pub wall_ns: u64,
    /// Virtual simulation-clock nanoseconds (advances at barriers).
    pub virt_ns: u64,
    /// Free-form numeric payload (e.g. iteration index, bytes flushed;
    /// flow id for flow events).
    pub arg: u64,
    /// Second payload slot (message tag for flow events; 0 elsewhere).
    pub arg2: u64,
}

/// Fixed-capacity single-producer ring buffer of [`TraceEvent`]s.
pub struct RankBuffer {
    slots: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]>,
    /// Total events ever pushed (monotonic; slot index = head % capacity).
    head: AtomicUsize,
}

// SAFETY: exactly one thread (the owning rank) writes via `push`, and
// `drain_ordered` is only called after that thread has been joined; the
// join (or the Release/Acquire pair on `head`) orders slot writes before
// reads. No two threads ever access a slot concurrently.
unsafe impl Sync for RankBuffer {}
unsafe impl Send for RankBuffer {}

impl RankBuffer {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be nonzero");
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        RankBuffer {
            slots,
            head: AtomicUsize::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events pushed over the buffer's lifetime (may exceed
    /// capacity; the oldest are overwritten).
    pub fn pushed(&self) -> usize {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to ring wrap-around.
    pub fn dropped(&self) -> usize {
        self.pushed().saturating_sub(self.capacity())
    }

    /// Record one event. Must only be called from the owning rank thread.
    #[inline]
    pub fn push(&self, ev: TraceEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[head % self.slots.len()];
        // SAFETY: single producer (see `Sync` justification above); no
        // reader touches this slot until after the producer thread joins.
        unsafe { (*slot.get()).write(ev) };
        self.head.store(head + 1, Ordering::Release);
    }

    /// Copy out the surviving events, oldest first. Call only after the
    /// producer thread has finished.
    pub fn drain_ordered(&self) -> Vec<TraceEvent> {
        let pushed = self.pushed();
        let cap = self.slots.len();
        let kept = pushed.min(cap);
        let start = pushed - kept;
        (start..pushed)
            .map(|i| {
                // SAFETY: indices in [start, pushed) were initialized by
                // `push` and are not being written concurrently.
                unsafe { (*self.slots[i % cap].get()).assume_init() }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, arg: u64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Instant,
            name,
            wall_ns: arg,
            virt_ns: arg,
            arg,
            arg2: 0,
        }
    }

    #[test]
    fn push_and_drain_in_order() {
        let rb = RankBuffer::new(8);
        for i in 0..5 {
            rb.push(ev("x", i));
        }
        let out = rb.drain_ordered();
        assert_eq!(out.len(), 5);
        assert_eq!(
            out.iter().map(|e| e.arg).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(rb.dropped(), 0);
    }

    #[test]
    fn wraparound_keeps_newest() {
        let rb = RankBuffer::new(4);
        for i in 0..10 {
            rb.push(ev("x", i));
        }
        let out = rb.drain_ordered();
        assert_eq!(
            out.iter().map(|e| e.arg).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(rb.dropped(), 6);
        assert_eq!(rb.pushed(), 10);
    }

    #[test]
    fn concurrent_producer_then_join_then_drain() {
        use std::sync::Arc;
        let rb = Arc::new(RankBuffer::new(1024));
        let rb2 = Arc::clone(&rb);
        std::thread::spawn(move || {
            for i in 0..1000 {
                rb2.push(ev("t", i));
            }
        })
        .join()
        .unwrap();
        let out = rb.drain_ordered();
        assert_eq!(out.len(), 1000);
        assert!(out.windows(2).all(|w| w[0].arg + 1 == w[1].arg));
    }
}
