//! The unified run report: one JSON document per run consolidating message
//! statistics, phase records, convergence trajectory, histograms, and
//! (for query runs) recall.
//!
//! All field types are local to `obs` so the crate stays dependency-free;
//! the binaries translate from `ygm`/engine types when filling one in.

use crate::critical_path::{CriticalPathSection, PhaseAttribution};
use crate::hist::HistogramSnapshot;
use crate::json::JsonValue as J;
use crate::timeseries::{SeriesPoint, SeriesSnapshot};

/// Report schema version; bump on breaking layout changes.
///
/// v1: aggregates only (tags, totals, phases, convergence, histograms).
/// v2: adds continuous telemetry — per-rank `series` sampled on the
///     virtual clock and the rank×rank×tag traffic `matrix`.
/// v3: adds the optional `serving` section — online-serving SLO counters,
///     exact latency histogram, and the result digest (omitted for
///     non-serving runs, which keeps those documents v2-shaped).
/// v4: adds the optional `critical_path` section (happens-before
///     critical-path length, compute/comm/stall/retransmit attribution,
///     per-rank slack, straggler score) and the `dropped_spans` counter
///     (span-ring overflow). Older documents parse with both absent.
/// v5: adds the optional `rnn` section — RNN-Descent optimization-mode
///     parameters and per-round prune/add counters (omitted for runs that
///     did not use `--opt-mode rnn`). Older documents parse with it absent.
/// v6: adds the optional `query_forensics` section — per-query lifecycle
///     exemplars from the serving layer's deterministic tail-based
///     sampler, per-stage latency histograms, sampler counters, and the
///     section digest — plus `dropped_spans_per_rank` (per-rank ring
///     overflow, complementing the v4 total). Older documents parse with
///     the section absent and the per-rank vector empty.
/// v7: the serving section grows client-perceived latency
///     (`client_p50_ns`/`client_p99_ns`/`client_hist` — measured from each
///     query's *first* issue, so closed-loop retry time counts) and the
///     optional per-tenant SLO array `tenants` (omitted when the workload
///     declares no tenant classes); query-forensics exemplars gain a
///     `tenant` field. Older documents parse with zeros / empty vectors.
/// v8: adds the optional `vdb` section — vector-DB product-layer counters
///     from a namespaced serving run (per-namespace point/live/tombstone/
///     dead/epoch counters, online insert/delete/compaction totals, and
///     the filtered-query selectivity histogram). Omitted for runs without
///     a `--namespace`; older documents parse with it absent.
pub const SCHEMA_VERSION: u64 = 8;

/// Oldest schema this parser still accepts. v1 documents parse with empty
/// `series` and no `matrix`; v1/v2 documents parse with no `serving`.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Per-message-tag traffic totals (mirrors `ygm`'s `TagStats` plus identity).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TagReport {
    pub tag: u64,
    pub name: String,
    pub count: u64,
    pub bytes: u64,
    pub remote_count: u64,
    pub remote_bytes: u64,
}

/// One barrier-to-barrier phase of virtual time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseReport {
    pub index: u64,
    pub compute_secs: f64,
    pub comm_secs: f64,
    pub barrier_secs: f64,
    pub msgs: u64,
    pub bytes: u64,
}

/// One NN-Descent iteration's convergence sample.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvergencePoint {
    pub iteration: u64,
    /// Successful heap updates (the paper's `c` termination counter).
    pub updates: u64,
}

/// Summary statistics of one named histogram.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistReport {
    pub name: String,
    pub count: u64,
    pub mean: f64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistReport {
    pub fn from_snapshot(name: &str, s: &HistogramSnapshot) -> Self {
        HistReport {
            name: name.to_string(),
            count: s.count,
            mean: s.mean(),
            min: s.min,
            max: s.max,
            p50: s.p50(),
            p95: s.p95(),
            p99: s.p99(),
        }
    }
}

/// Injected-fault and reliable-delivery counters from a simulation-tested
/// run (mirrors `ygm`'s `FaultReport`). Present only when the producing
/// world ran under a fault plan; the JSON key is omitted otherwise, which
/// keeps fault-free reports byte-identical to schema v1 documents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSection {
    /// Seed that replays this run's fault schedule (`--sim-seed`).
    pub sim_seed: u64,
    /// Fault profile name (`clean` / `lossy` / `stormy` / `custom`).
    pub profile: String,
    pub dropped: u64,
    pub duplicated: u64,
    pub delayed: u64,
    pub stalls: u64,
    pub jittered_flushes: u64,
    pub retransmits: u64,
    pub dedup_discards: u64,
    pub forced_deliveries: u64,
}

/// Online query-serving SLO telemetry (schema v3). Produced by the serving
/// engine; every counter and bucket is deterministic in the serve seed and
/// independent of the rank count, so the section doubles as the replay
/// fingerprint of a serving run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServingSection {
    /// Seed that replays this run's workload and every serving decision
    /// (`--serve-seed`).
    pub serve_seed: u64,
    /// Virtual duration of one serving slot, nanoseconds.
    pub slot_ns: u64,
    /// Serving slots executed (including the drain tail past the last
    /// arrival).
    pub slots: u64,
    /// Queries generated by the open-loop arrival process.
    pub offered: u64,
    /// Queries admitted to a frontend queue (offered − shed_overload
    /// − cache_hits, before deadline shedding).
    pub admitted: u64,
    /// Queries answered with search results (excludes cache hits).
    pub answered: u64,
    /// Queries answered straight from the result cache.
    pub cache_hits: u64,
    /// Cache entries evicted by the LRU policy.
    pub cache_evictions: u64,
    /// Queries dropped because their deadline expired while queued.
    pub shed_deadline: u64,
    /// Queries dropped by the queue-depth high watermark.
    pub shed_overload: u64,
    /// Queries answered at a degraded search level (shrunk epsilon/beam).
    pub degraded: u64,
    /// High-water mark of the logical queue depth.
    pub max_queue_depth: u64,
    /// Answered-query latency percentiles, virtual nanoseconds.
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// Mean answered-query latency, virtual nanoseconds.
    pub mean_latency_ns: f64,
    /// Exact latency histogram: `(latency_slots, count)` sorted by
    /// latency. Bit-identical across reruns and rank counts.
    pub latency_hist: Vec<(u64, u64)>,
    /// Client-perceived latency percentiles (schema v7): measured from
    /// each query's *first* issue slot, so closed-loop shed-and-retry
    /// time accumulates. Equal to the answered percentiles for open
    /// loops; the divergence under saturation is coordinated omission
    /// made visible. Zero in pre-v7 documents.
    pub client_p50_ns: u64,
    pub client_p99_ns: u64,
    /// Exact client-perceived latency histogram (schema v7); empty in
    /// pre-v7 documents.
    pub client_hist: Vec<(u64, u64)>,
    /// Per-tenant-class SLO attainment (schema v7), in declaration
    /// (priority) order. Empty — and omitted from the JSON — when the
    /// workload declares no tenant classes, which keeps single-tenant
    /// documents shaped like v3.
    pub tenants: Vec<TenantSloSection>,
    /// FNV-1a digest over every answered query's `(query_id, result ids)`
    /// in query-id order — the bit-identity fingerprint of the answers.
    pub result_digest: u64,
}

/// One tenant class's slice of the serving SLO accounting (schema v7).
/// Deterministic in the serve seed and independent of the rank count,
/// like every other serving field.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantSloSection {
    /// Class name from the workload spec (e.g. `gold`).
    pub name: String,
    /// Declared traffic share, integer percent.
    pub share_pct: u64,
    pub offered: u64,
    pub admitted: u64,
    pub answered: u64,
    pub cache_hits: u64,
    pub shed_overload: u64,
    pub shed_deadline: u64,
    pub degraded: u64,
    /// Fraction of offered queries answered (search + cache); 0 when the
    /// class offered nothing.
    pub slo_attainment: f64,
    /// Answered-latency percentiles of this class, virtual nanoseconds.
    pub p50_ns: u64,
    pub p99_ns: u64,
    /// Exact per-class latency histogram `(latency_slots, count)`.
    pub latency_hist: Vec<(u64, u64)>,
}

/// One RNN-Descent inner round's global counters (schema v5). Every value
/// is all-reduced and deterministic, so the section doubles as the replay
/// fingerprint of an RNN optimization pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RnnRoundReport {
    /// Outer-round index (`0..t1`).
    pub outer: u64,
    /// Inner-round index within the outer round (`0..t2`).
    pub inner: u64,
    /// Flagged pairs checked this round == distance evaluations.
    pub pairs: u64,
    /// Edges removed by the occlusion rule.
    pub pruned: u64,
    /// Redirected edges that survived the canonical apply step.
    pub added: u64,
}

/// RNN-Descent optimization telemetry (schema v5): the T1/T2/K0/R knobs,
/// per-round counters, reverse-edge merge sizes, and the pass's distance
/// evaluations. Bit-identical across reruns and rank counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RnnSection {
    /// Outer rounds (`T1`).
    pub t1: u64,
    /// Max inner rounds per outer round (`T2`).
    pub t2: u64,
    /// Final out-degree cap (`K0`).
    pub k0: u64,
    /// Working-row capacity (`R >= K0`).
    pub r: u64,
    /// Inner rounds actually executed (early exit on convergence).
    pub rounds: Vec<RnnRoundReport>,
    /// Surviving inserts of each reverse-edge exchange; index 0 is the
    /// seed merge, later entries the outer-round boundaries.
    pub reverse_added: Vec<u64>,
    /// Distance evaluations of the RNN pass alone.
    pub dist_evals: u64,
    /// Zero-in-degree vertices reconnected by the post-cap connectivity
    /// repair.
    pub repaired: u64,
}

/// One sampled per-query lifecycle record (schema v6). Every field is a
/// pure function of the serve seed and parameters — slot-clock times,
/// replicated verdicts, and search-cost counters — so records are
/// bit-identical across reruns *and* rank counts. (The executing home rank
/// is intentionally absent here: it is `pool_id % n_ranks`, which depends
/// on the rank count; the JSONL slow-query log derives it per run.)
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryExemplar {
    /// Arrival index of the query within the workload.
    pub idx: u64,
    /// Query-pool id (the vector served).
    pub pool_id: u64,
    /// Tenant class index (schema v7; 0 when the workload declares no
    /// classes and in pre-v7 documents).
    pub tenant: u64,
    /// Final verdict: `answered` / `cache_hit` / `shed_overload` /
    /// `shed_deadline`.
    pub verdict: String,
    /// Why the sampler retained this record: `|`-joined subset of
    /// `slow`, `shed`, `degraded`, `deadline_miss`.
    pub why: String,
    /// Degrade level the query was answered at (0 = full quality).
    pub degrade_level: u64,
    /// FNV-1a hash of the quantized cache key (hex in JSON).
    pub cache_key_hash: u64,
    /// Slot the query arrived in / slot its lifecycle ended in.
    pub arrived_slot: u64,
    pub done_slot: u64,
    /// Per-stage virtual-time breakdown in slots. The invariant the CI
    /// asserts: these five always sum exactly to `latency_slots`.
    pub admission_slots: u64,
    pub batch_wait_slots: u64,
    pub dispatch_slots: u64,
    pub search_slots: u64,
    pub response_slots: u64,
    /// End-to-end latency in slots (0 for cache hits and overload sheds).
    pub latency_slots: u64,
    /// Search cost: beam expansions, distance evaluations, greedy rounds
    /// (all zero for cache hits and shed queries).
    pub expansions: u64,
    pub dist_evals: u64,
    pub rounds: u64,
    /// Whether the query missed its deadline (shed stale, or answered past
    /// `deadline_slots` due to fault penalties).
    pub deadline_miss: bool,
}

impl QueryExemplar {
    /// Sum of the five per-stage slot counts; must equal
    /// [`Self::latency_slots`] (asserted by the producer and CI).
    pub fn stage_sum(&self) -> u64 {
        self.admission_slots
            + self.batch_wait_slots
            + self.dispatch_slots
            + self.search_slots
            + self.response_slots
    }
}

/// Per-query forensics from the serving layer (schema v6): stage-latency
/// histograms over every offered query, the tail sampler's exemplar
/// records, sampler counters, and a digest pinning the whole section.
/// Bit-identical across reruns and rank counts (the sampler is a pure PRF
/// of the serve seed; nothing here derives from scheduling).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryForensicsSection {
    /// Tail-sampling window length in slots.
    pub window_slots: u64,
    /// Slowest-N retained per window.
    pub slow_n: u64,
    /// Lifecycle records considered (== offered queries).
    pub considered: u64,
    /// Records retained in `exemplars` (slow ∪ exemplar classes).
    pub retained: u64,
    /// Records retained for being among their window's slowest-N.
    pub retained_slow: u64,
    /// Records retained unconditionally (shed / degraded / deadline-miss).
    pub retained_exemplar: u64,
    /// Per-stage latency histograms over *all* queries (not just sampled):
    /// `(stage name, [(slots, count)...])`, buckets sorted by slots.
    pub stage_hists: Vec<(String, Vec<(u64, u64)>)>,
    /// Sampled records, sorted by arrival index.
    pub exemplars: Vec<QueryExemplar>,
    /// FNV-1a digest over counters, histograms, and every exemplar field —
    /// the bit-identity fingerprint of the section (hex in JSON).
    pub digest: u64,
}

/// One namespace's vector-DB counters (schema v8): how many points the
/// collection holds, how many are masked by tombstones, how many were
/// folded into the dead set by compaction, and the online-mutation totals
/// from the serving run that produced this report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VdbNamespaceSection {
    /// Namespace (collection) name.
    pub name: String,
    /// Total point slots ever allocated (live + tombstoned + dead).
    pub points: u64,
    /// Points visible to search (`points - tombstones - dead`).
    pub live: u64,
    /// Deleted but not yet compacted — masked out of every result.
    pub tombstones: u64,
    /// Deleted and folded away by compaction.
    pub dead: u64,
    /// Versioned graph epoch; bumped by ingest and compaction, which
    /// invalidates result-cache entries keyed on the previous epoch.
    pub epoch: u64,
    /// Online inserts applied during the serving run.
    pub inserts: u64,
    /// Online deletes (tombstones placed) during the serving run.
    pub deletes: u64,
    /// Background compaction passes executed during the serving run.
    pub compactions: u64,
}

/// Vector-DB product-layer telemetry (schema v8): per-namespace counters
/// plus filtered-query accounting. `None` for runs without a namespace.
/// Bit-identical across reruns and rank counts (mutation and compaction
/// schedules are pure PRFs of the serve seed).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VdbSection {
    /// Per-namespace counters, sorted by name.
    pub namespaces: Vec<VdbNamespaceSection>,
    /// Dispatched queries that carried a metadata predicate.
    pub filtered_queries: u64,
    /// Result ids suppressed from cache hits because a tombstone landed
    /// after the entry was cached (deletes do not bump the epoch).
    pub cache_suppressed_ids: u64,
    /// Decile histogram of filtered-query selectivity: `hist[d]` counts
    /// dispatched filtered queries whose mask allowed `[d*10%, (d+1)*10%)`
    /// of the collection (the last bucket is closed at 100%).
    pub selectivity_hist: Vec<(u64, u64)>,
}

/// One tag's rank×rank traffic counts (mirrors `ygm`'s traffic matrix).
///
/// `counts[src * n_ranks + dest]` / `bytes[...]` hold message and byte
/// totals for this tag on the (src → dest) edge, *including* the diagonal
/// (rank-local sends), so each tag's matrix sums to the corresponding
/// [`TagReport::count`] / [`TagReport::bytes`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatrixTagReport {
    pub tag: u64,
    pub name: String,
    /// Row-major `n_ranks × n_ranks` message counts.
    pub counts: Vec<u64>,
    /// Row-major `n_ranks × n_ranks` byte totals.
    pub bytes: Vec<u64>,
}

/// The full rank×rank×tag traffic matrix of a run (schema v2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatrixSection {
    pub n_ranks: u64,
    /// Per-tag matrices, sorted by tag; tags with no traffic are omitted.
    pub tags: Vec<MatrixTagReport>,
}

impl MatrixSection {
    /// Message counts summed over tags, row-major `n_ranks × n_ranks`.
    pub fn total_counts(&self) -> Vec<u64> {
        self.sum_over_tags(|t| &t.counts)
    }

    /// Byte totals summed over tags, row-major `n_ranks × n_ranks`.
    pub fn total_bytes(&self) -> Vec<u64> {
        self.sum_over_tags(|t| &t.bytes)
    }

    fn sum_over_tags(&self, f: impl Fn(&MatrixTagReport) -> &Vec<u64>) -> Vec<u64> {
        let n = (self.n_ranks * self.n_ranks) as usize;
        let mut out = vec![0u64; n];
        for t in &self.tags {
            for (acc, v) in out.iter_mut().zip(f(t)) {
                *acc += v;
            }
        }
        out
    }
}

/// The consolidated per-run report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Producing binary or driver (e.g. `dnnd-construct`).
    pub binary: String,
    /// Free-form string parameters (dataset path, metric, seed, ...).
    pub params: Vec<(String, String)>,
    pub n_ranks: u64,
    /// Descent iterations executed (0 for pure query runs).
    pub iterations: u64,
    pub distance_evals: u64,
    /// Virtual (simulated cluster) time, seconds.
    pub sim_secs: f64,
    /// Real wall-clock time, seconds.
    pub wall_secs: f64,
    pub compute_secs: f64,
    pub comm_secs: f64,
    pub barrier_secs: f64,
    /// Per-tag traffic, sorted by tag.
    pub tags: Vec<TagReport>,
    /// Traffic totals over all tags.
    pub total_count: u64,
    pub total_bytes: u64,
    pub total_remote_count: u64,
    pub total_remote_bytes: u64,
    pub phases: Vec<PhaseReport>,
    pub convergence: Vec<ConvergencePoint>,
    /// Recall@k against ground truth, when measured.
    pub recall: Option<f64>,
    pub histograms: Vec<HistReport>,
    /// Free-form numeric metrics (e.g. `queries_per_sec`).
    pub extra: Vec<(String, f64)>,
    /// Fault-injection counters; `None` for fault-free runs.
    pub faults: Option<FaultSection>,
    /// Per-rank gauge series sampled on the virtual clock (schema v2);
    /// empty when the run was not traced or predates v2.
    pub series: Vec<SeriesSnapshot>,
    /// Rank×rank×tag traffic matrix (schema v2); `None` when the producer
    /// did not record one (v1 documents, single-report tools).
    pub matrix: Option<MatrixSection>,
    /// Online-serving SLO telemetry (schema v3); `None` for non-serving
    /// runs and pre-v3 documents.
    pub serving: Option<ServingSection>,
    /// Critical-path analysis over the happens-before DAG (schema v4);
    /// `None` for untraced runs and pre-v4 documents.
    pub critical_path: Option<CriticalPathSection>,
    /// RNN-Descent optimization counters (schema v5); `None` for runs that
    /// did not use the RNN optimization mode and pre-v5 documents.
    pub rnn: Option<RnnSection>,
    /// Per-query forensics from the serving layer (schema v6); `None` for
    /// non-serving runs and pre-v6 documents.
    pub query_forensics: Option<QueryForensicsSection>,
    /// Vector-DB product-layer counters (schema v8); `None` for runs
    /// without a namespace and pre-v8 documents.
    pub vdb: Option<VdbSection>,
    /// Trace events lost to span-ring overflow (schema v4; 0 in older
    /// documents). Nonzero means the trace — and any flow-pairing or
    /// critical-path post-processing of it — is incomplete.
    pub dropped_spans: u64,
    /// Per-rank split of `dropped_spans` (schema v6; empty in older
    /// documents and untraced runs). Index = rank.
    pub dropped_spans_per_rank: Vec<u64>,
}

impl RunReport {
    pub fn new(binary: impl Into<String>) -> Self {
        RunReport {
            binary: binary.into(),
            ..Default::default()
        }
    }

    pub fn param(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        self.params.push((key.into(), value.to_string()));
        self
    }

    pub fn metric(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.extra.push((key.into(), value));
        self
    }

    /// Record the span-ring overflow count, warning on stderr when nonzero:
    /// a lossy trace cannot support exact flow pairing or critical-path
    /// post-processing, so the reader deserves to know up front.
    pub fn set_dropped_spans(&mut self, dropped: u64) -> &mut Self {
        self.dropped_spans = dropped;
        if dropped > 0 {
            eprintln!(
                "warning: {dropped} trace events lost to span-ring overflow; \
                 the exported trace is incomplete (raise the ring capacity)"
            );
        }
        self
    }

    /// Record the per-rank span-ring overflow split (schema v6). The total
    /// goes through [`Self::set_dropped_spans`] so the stderr warning
    /// fires once.
    pub fn set_dropped_spans_per_rank(&mut self, per_rank: Vec<u64>) -> &mut Self {
        let total = per_rank.iter().sum();
        self.dropped_spans_per_rank = per_rank;
        self.set_dropped_spans(total)
    }

    /// Append histogram summaries from tracer snapshots.
    pub fn add_histograms(&mut self, snaps: &[(String, HistogramSnapshot)]) -> &mut Self {
        for (name, s) in snaps {
            self.histograms.push(HistReport::from_snapshot(name, s));
        }
        self
    }

    pub fn to_json(&self) -> J {
        let mut fields = vec![
            ("schema_version".into(), J::uint(SCHEMA_VERSION)),
            ("binary".into(), J::str(&self.binary)),
            (
                "params".into(),
                J::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), J::str(v)))
                        .collect(),
                ),
            ),
            ("n_ranks".into(), J::uint(self.n_ranks)),
            ("iterations".into(), J::uint(self.iterations)),
            ("distance_evals".into(), J::uint(self.distance_evals)),
            ("sim_secs".into(), J::Num(self.sim_secs)),
            ("wall_secs".into(), J::Num(self.wall_secs)),
            (
                "breakdown".into(),
                J::Obj(vec![
                    ("compute_secs".into(), J::Num(self.compute_secs)),
                    ("comm_secs".into(), J::Num(self.comm_secs)),
                    ("barrier_secs".into(), J::Num(self.barrier_secs)),
                ]),
            ),
            (
                "tags".into(),
                J::Arr(
                    self.tags
                        .iter()
                        .map(|t| {
                            J::Obj(vec![
                                ("tag".into(), J::uint(t.tag)),
                                ("name".into(), J::str(&t.name)),
                                ("count".into(), J::uint(t.count)),
                                ("bytes".into(), J::uint(t.bytes)),
                                ("remote_count".into(), J::uint(t.remote_count)),
                                ("remote_bytes".into(), J::uint(t.remote_bytes)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "total".into(),
                J::Obj(vec![
                    ("count".into(), J::uint(self.total_count)),
                    ("bytes".into(), J::uint(self.total_bytes)),
                    ("remote_count".into(), J::uint(self.total_remote_count)),
                    ("remote_bytes".into(), J::uint(self.total_remote_bytes)),
                ]),
            ),
            (
                "phases".into(),
                J::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            J::Obj(vec![
                                ("index".into(), J::uint(p.index)),
                                ("compute_secs".into(), J::Num(p.compute_secs)),
                                ("comm_secs".into(), J::Num(p.comm_secs)),
                                ("barrier_secs".into(), J::Num(p.barrier_secs)),
                                ("msgs".into(), J::uint(p.msgs)),
                                ("bytes".into(), J::uint(p.bytes)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "convergence".into(),
                J::Arr(
                    self.convergence
                        .iter()
                        .map(|c| {
                            J::Obj(vec![
                                ("iteration".into(), J::uint(c.iteration)),
                                ("updates".into(), J::uint(c.updates)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("recall".into(), self.recall.map(J::Num).unwrap_or(J::Null)),
            (
                "histograms".into(),
                J::Arr(
                    self.histograms
                        .iter()
                        .map(|h| {
                            J::Obj(vec![
                                ("name".into(), J::str(&h.name)),
                                ("count".into(), J::uint(h.count)),
                                ("mean".into(), J::Num(h.mean)),
                                ("min".into(), J::uint(h.min)),
                                ("max".into(), J::uint(h.max)),
                                ("p50".into(), J::uint(h.p50)),
                                ("p95".into(), J::uint(h.p95)),
                                ("p99".into(), J::uint(h.p99)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "extra".into(),
                J::Obj(
                    self.extra
                        .iter()
                        .map(|(k, v)| (k.clone(), J::Num(*v)))
                        .collect(),
                ),
            ),
            ("dropped_spans".into(), J::uint(self.dropped_spans)),
        ];
        if !self.dropped_spans_per_rank.is_empty() {
            fields.push((
                "dropped_spans_per_rank".into(),
                J::Arr(
                    self.dropped_spans_per_rank
                        .iter()
                        .map(|&d| J::uint(d))
                        .collect(),
                ),
            ));
        }
        fields.push((
            "series".into(),
            J::Arr(
                self.series
                    .iter()
                    .map(|s| {
                        J::Obj(vec![
                            ("name".into(), J::str(&s.name)),
                            ("rank".into(), J::uint(s.rank)),
                            (
                                "points".into(),
                                J::Arr(
                                    s.points
                                        .iter()
                                        .map(|p| {
                                            J::Obj(vec![
                                                ("t_ns".into(), J::uint(p.t_ns)),
                                                ("value".into(), J::Num(p.value)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ));
        if let Some(m) = &self.matrix {
            fields.push((
                "matrix".into(),
                J::Obj(vec![
                    ("n_ranks".into(), J::uint(m.n_ranks)),
                    (
                        "tags".into(),
                        J::Arr(
                            m.tags
                                .iter()
                                .map(|t| {
                                    J::Obj(vec![
                                        ("tag".into(), J::uint(t.tag)),
                                        ("name".into(), J::str(&t.name)),
                                        (
                                            "counts".into(),
                                            J::Arr(t.counts.iter().map(|&c| J::uint(c)).collect()),
                                        ),
                                        (
                                            "bytes".into(),
                                            J::Arr(t.bytes.iter().map(|&b| J::uint(b)).collect()),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(s) = &self.serving {
            let hist_json = |hist: &[(u64, u64)]| {
                J::Arr(
                    hist.iter()
                        .map(|&(slots, count)| {
                            J::Obj(vec![
                                ("slots".into(), J::uint(slots)),
                                ("count".into(), J::uint(count)),
                            ])
                        })
                        .collect(),
                )
            };
            let mut sv = vec![
                ("serve_seed".into(), J::uint(s.serve_seed)),
                ("slot_ns".into(), J::uint(s.slot_ns)),
                ("slots".into(), J::uint(s.slots)),
                ("offered".into(), J::uint(s.offered)),
                ("admitted".into(), J::uint(s.admitted)),
                ("answered".into(), J::uint(s.answered)),
                ("cache_hits".into(), J::uint(s.cache_hits)),
                ("cache_evictions".into(), J::uint(s.cache_evictions)),
                ("shed_deadline".into(), J::uint(s.shed_deadline)),
                ("shed_overload".into(), J::uint(s.shed_overload)),
                ("degraded".into(), J::uint(s.degraded)),
                ("max_queue_depth".into(), J::uint(s.max_queue_depth)),
                ("p50_ns".into(), J::uint(s.p50_ns)),
                ("p95_ns".into(), J::uint(s.p95_ns)),
                ("p99_ns".into(), J::uint(s.p99_ns)),
                ("mean_latency_ns".into(), J::Num(s.mean_latency_ns)),
                ("latency_hist".into(), hist_json(&s.latency_hist)),
                ("client_p50_ns".into(), J::uint(s.client_p50_ns)),
                ("client_p99_ns".into(), J::uint(s.client_p99_ns)),
                ("client_hist".into(), hist_json(&s.client_hist)),
            ];
            // Tenant-less runs keep the v3-shaped document: the key is
            // omitted entirely, not written as an empty array.
            if !s.tenants.is_empty() {
                sv.push((
                    "tenants".into(),
                    J::Arr(
                        s.tenants
                            .iter()
                            .map(|t| {
                                J::Obj(vec![
                                    ("name".into(), J::str(t.name.clone())),
                                    ("share_pct".into(), J::uint(t.share_pct)),
                                    ("offered".into(), J::uint(t.offered)),
                                    ("admitted".into(), J::uint(t.admitted)),
                                    ("answered".into(), J::uint(t.answered)),
                                    ("cache_hits".into(), J::uint(t.cache_hits)),
                                    ("shed_overload".into(), J::uint(t.shed_overload)),
                                    ("shed_deadline".into(), J::uint(t.shed_deadline)),
                                    ("degraded".into(), J::uint(t.degraded)),
                                    ("slo_attainment".into(), J::Num(t.slo_attainment)),
                                    ("p50_ns".into(), J::uint(t.p50_ns)),
                                    ("p99_ns".into(), J::uint(t.p99_ns)),
                                    ("latency_hist".into(), hist_json(&t.latency_hist)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            // Hex string: JSON numbers are f64 and would round a
            // full-range 64-bit digest.
            sv.push((
                "result_digest".into(),
                J::str(format!("{:016x}", s.result_digest)),
            ));
            fields.push(("serving".into(), J::Obj(sv)));
        }
        if let Some(c) = &self.critical_path {
            fields.push((
                "critical_path".into(),
                J::Obj(vec![
                    ("n_ranks".into(), J::uint(c.n_ranks)),
                    ("phases".into(), J::uint(c.phases)),
                    ("critical_path_ns".into(), J::uint(c.critical_path_ns)),
                    ("collective_ns".into(), J::uint(c.collective_ns)),
                    ("compute_ns".into(), J::uint(c.compute_ns)),
                    ("comm_ns".into(), J::uint(c.comm_ns)),
                    ("stall_ns".into(), J::uint(c.stall_ns)),
                    ("retransmit_ns".into(), J::uint(c.retransmit_ns)),
                    (
                        "rank_slack_ns".into(),
                        J::Arr(c.rank_slack_ns.iter().map(|&s| J::Num(s)).collect()),
                    ),
                    (
                        "rank_critical_phases".into(),
                        J::Arr(c.rank_critical_phases.iter().map(|&n| J::uint(n)).collect()),
                    ),
                    ("straggler_score".into(), J::Num(c.straggler_score)),
                    (
                        "phase_attribution".into(),
                        J::Arr(
                            c.phase_attribution
                                .iter()
                                .map(|p| {
                                    J::Obj(vec![
                                        ("index".into(), J::uint(p.index)),
                                        ("total_ns".into(), J::uint(p.total_ns)),
                                        ("compute_ns".into(), J::uint(p.compute_ns)),
                                        ("comm_ns".into(), J::uint(p.comm_ns)),
                                        ("stall_ns".into(), J::uint(p.stall_ns)),
                                        ("retransmit_ns".into(), J::uint(p.retransmit_ns)),
                                        ("critical_rank".into(), J::uint(p.critical_rank)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(r) = &self.rnn {
            fields.push((
                "rnn".into(),
                J::Obj(vec![
                    ("t1".into(), J::uint(r.t1)),
                    ("t2".into(), J::uint(r.t2)),
                    ("k0".into(), J::uint(r.k0)),
                    ("r".into(), J::uint(r.r)),
                    (
                        "rounds".into(),
                        J::Arr(
                            r.rounds
                                .iter()
                                .map(|rd| {
                                    J::Obj(vec![
                                        ("outer".into(), J::uint(rd.outer)),
                                        ("inner".into(), J::uint(rd.inner)),
                                        ("pairs".into(), J::uint(rd.pairs)),
                                        ("pruned".into(), J::uint(rd.pruned)),
                                        ("added".into(), J::uint(rd.added)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "reverse_added".into(),
                        J::Arr(r.reverse_added.iter().map(|&a| J::uint(a)).collect()),
                    ),
                    ("dist_evals".into(), J::uint(r.dist_evals)),
                    ("repaired".into(), J::uint(r.repaired)),
                ]),
            ));
        }
        if let Some(q) = &self.query_forensics {
            let hist_arr = |buckets: &[(u64, u64)]| {
                J::Arr(
                    buckets
                        .iter()
                        .map(|&(slots, count)| {
                            J::Obj(vec![
                                ("slots".into(), J::uint(slots)),
                                ("count".into(), J::uint(count)),
                            ])
                        })
                        .collect(),
                )
            };
            fields.push((
                "query_forensics".into(),
                J::Obj(vec![
                    ("window_slots".into(), J::uint(q.window_slots)),
                    ("slow_n".into(), J::uint(q.slow_n)),
                    ("considered".into(), J::uint(q.considered)),
                    ("retained".into(), J::uint(q.retained)),
                    ("retained_slow".into(), J::uint(q.retained_slow)),
                    ("retained_exemplar".into(), J::uint(q.retained_exemplar)),
                    (
                        "stage_hists".into(),
                        J::Arr(
                            q.stage_hists
                                .iter()
                                .map(|(name, buckets)| {
                                    J::Obj(vec![
                                        ("stage".into(), J::str(name)),
                                        ("buckets".into(), hist_arr(buckets)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "exemplars".into(),
                        J::Arr(
                            q.exemplars
                                .iter()
                                .map(|e| {
                                    J::Obj(vec![
                                        ("idx".into(), J::uint(e.idx)),
                                        ("pool_id".into(), J::uint(e.pool_id)),
                                        ("tenant".into(), J::uint(e.tenant)),
                                        ("verdict".into(), J::str(&e.verdict)),
                                        ("why".into(), J::str(&e.why)),
                                        ("degrade_level".into(), J::uint(e.degrade_level)),
                                        (
                                            "cache_key_hash".into(),
                                            J::str(format!("{:016x}", e.cache_key_hash)),
                                        ),
                                        ("arrived_slot".into(), J::uint(e.arrived_slot)),
                                        ("done_slot".into(), J::uint(e.done_slot)),
                                        ("admission_slots".into(), J::uint(e.admission_slots)),
                                        ("batch_wait_slots".into(), J::uint(e.batch_wait_slots)),
                                        ("dispatch_slots".into(), J::uint(e.dispatch_slots)),
                                        ("search_slots".into(), J::uint(e.search_slots)),
                                        ("response_slots".into(), J::uint(e.response_slots)),
                                        ("latency_slots".into(), J::uint(e.latency_slots)),
                                        ("expansions".into(), J::uint(e.expansions)),
                                        ("dist_evals".into(), J::uint(e.dist_evals)),
                                        ("rounds".into(), J::uint(e.rounds)),
                                        ("deadline_miss".into(), J::Bool(e.deadline_miss)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    // Hex string: full-range 64-bit digest must not round
                    // through a JSON double.
                    ("digest".into(), J::str(format!("{:016x}", q.digest))),
                ]),
            ));
        }
        if let Some(vd) = &self.vdb {
            fields.push((
                "vdb".into(),
                J::Obj(vec![
                    (
                        "namespaces".into(),
                        J::Arr(
                            vd.namespaces
                                .iter()
                                .map(|ns| {
                                    J::Obj(vec![
                                        ("name".into(), J::str(&ns.name)),
                                        ("points".into(), J::uint(ns.points)),
                                        ("live".into(), J::uint(ns.live)),
                                        ("tombstones".into(), J::uint(ns.tombstones)),
                                        ("dead".into(), J::uint(ns.dead)),
                                        ("epoch".into(), J::uint(ns.epoch)),
                                        ("inserts".into(), J::uint(ns.inserts)),
                                        ("deletes".into(), J::uint(ns.deletes)),
                                        ("compactions".into(), J::uint(ns.compactions)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("filtered_queries".into(), J::uint(vd.filtered_queries)),
                    (
                        "cache_suppressed_ids".into(),
                        J::uint(vd.cache_suppressed_ids),
                    ),
                    (
                        "selectivity_hist".into(),
                        J::Arr(
                            vd.selectivity_hist
                                .iter()
                                .map(|&(decile, count)| {
                                    J::Obj(vec![
                                        ("decile".into(), J::uint(decile)),
                                        ("count".into(), J::uint(count)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(f) = &self.faults {
            fields.push((
                "faults".into(),
                J::Obj(vec![
                    ("sim_seed".into(), J::uint(f.sim_seed)),
                    ("profile".into(), J::str(&f.profile)),
                    ("dropped".into(), J::uint(f.dropped)),
                    ("duplicated".into(), J::uint(f.duplicated)),
                    ("delayed".into(), J::uint(f.delayed)),
                    ("stalls".into(), J::uint(f.stalls)),
                    ("jittered_flushes".into(), J::uint(f.jittered_flushes)),
                    ("retransmits".into(), J::uint(f.retransmits)),
                    ("dedup_discards".into(), J::uint(f.dedup_discards)),
                    ("forced_deliveries".into(), J::uint(f.forced_deliveries)),
                ]),
            ));
        }
        J::Obj(fields)
    }

    /// Pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Rebuild a report from its JSON form (inverse of [`Self::to_json`]).
    pub fn from_json(v: &J) -> Result<RunReport, String> {
        fn f64_field(v: &J, key: &str) -> Result<f64, String> {
            v.get(key)
                .and_then(J::as_f64)
                .ok_or_else(|| format!("missing number field '{key}'"))
        }
        fn u64_field(v: &J, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(J::as_u64)
                .ok_or_else(|| format!("missing integer field '{key}'"))
        }
        fn str_field(v: &J, key: &str) -> Result<String, String> {
            v.get(key)
                .and_then(J::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        }
        fn arr_field<'a>(v: &'a J, key: &str) -> Result<&'a [J], String> {
            v.get(key)
                .and_then(J::as_arr)
                .ok_or_else(|| format!("missing array field '{key}'"))
        }

        let version = u64_field(v, "schema_version")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported schema_version {version} \
                 (this build reads v{MIN_SCHEMA_VERSION} through v{SCHEMA_VERSION})"
            ));
        }

        let mut report = RunReport::new(str_field(v, "binary")?);

        if let Some(J::Obj(fields)) = v.get("params") {
            for (k, val) in fields {
                report
                    .params
                    .push((k.clone(), val.as_str().unwrap_or_default().to_string()));
            }
        }

        report.n_ranks = u64_field(v, "n_ranks")?;
        report.iterations = u64_field(v, "iterations")?;
        report.distance_evals = u64_field(v, "distance_evals")?;
        report.sim_secs = f64_field(v, "sim_secs")?;
        report.wall_secs = f64_field(v, "wall_secs")?;

        let breakdown = v.get("breakdown").ok_or("missing 'breakdown'")?;
        report.compute_secs = f64_field(breakdown, "compute_secs")?;
        report.comm_secs = f64_field(breakdown, "comm_secs")?;
        report.barrier_secs = f64_field(breakdown, "barrier_secs")?;

        for t in arr_field(v, "tags")? {
            report.tags.push(TagReport {
                tag: u64_field(t, "tag")?,
                name: str_field(t, "name")?,
                count: u64_field(t, "count")?,
                bytes: u64_field(t, "bytes")?,
                remote_count: u64_field(t, "remote_count")?,
                remote_bytes: u64_field(t, "remote_bytes")?,
            });
        }

        let total = v.get("total").ok_or("missing 'total'")?;
        report.total_count = u64_field(total, "count")?;
        report.total_bytes = u64_field(total, "bytes")?;
        report.total_remote_count = u64_field(total, "remote_count")?;
        report.total_remote_bytes = u64_field(total, "remote_bytes")?;

        for p in arr_field(v, "phases")? {
            report.phases.push(PhaseReport {
                index: u64_field(p, "index")?,
                compute_secs: f64_field(p, "compute_secs")?,
                comm_secs: f64_field(p, "comm_secs")?,
                barrier_secs: f64_field(p, "barrier_secs")?,
                msgs: u64_field(p, "msgs")?,
                bytes: u64_field(p, "bytes")?,
            });
        }

        for c in arr_field(v, "convergence")? {
            report.convergence.push(ConvergencePoint {
                iteration: u64_field(c, "iteration")?,
                updates: u64_field(c, "updates")?,
            });
        }

        report.recall = v.get("recall").and_then(J::as_f64);

        for h in arr_field(v, "histograms")? {
            report.histograms.push(HistReport {
                name: str_field(h, "name")?,
                count: u64_field(h, "count")?,
                mean: f64_field(h, "mean")?,
                min: u64_field(h, "min")?,
                max: u64_field(h, "max")?,
                p50: u64_field(h, "p50")?,
                p95: u64_field(h, "p95")?,
                p99: u64_field(h, "p99")?,
            });
        }

        if let Some(J::Obj(fields)) = v.get("extra") {
            for (k, val) in fields {
                report.extra.push((k.clone(), val.as_f64().unwrap_or(0.0)));
            }
        }

        // Schema v2 sections; v1 documents simply lack the keys.
        if let Some(series) = v.get("series").and_then(J::as_arr) {
            for s in series {
                let mut snap = SeriesSnapshot {
                    name: str_field(s, "name")?,
                    rank: u64_field(s, "rank")?,
                    points: Vec::new(),
                };
                for p in arr_field(s, "points")? {
                    snap.points.push(SeriesPoint {
                        t_ns: u64_field(p, "t_ns")?,
                        value: f64_field(p, "value")?,
                    });
                }
                report.series.push(snap);
            }
        }

        if let Some(m) = v.get("matrix") {
            let n_ranks = u64_field(m, "n_ranks")?;
            let cells = (n_ranks * n_ranks) as usize;
            let mut tags = Vec::new();
            for t in arr_field(m, "tags")? {
                let uints = |key: &str| -> Result<Vec<u64>, String> {
                    let arr = arr_field(t, key)?;
                    if arr.len() != cells {
                        return Err(format!(
                            "matrix '{key}' has {} cells (expected {cells})",
                            arr.len()
                        ));
                    }
                    arr.iter()
                        .map(|x| x.as_u64().ok_or_else(|| format!("bad cell in '{key}'")))
                        .collect()
                };
                tags.push(MatrixTagReport {
                    tag: u64_field(t, "tag")?,
                    name: str_field(t, "name")?,
                    counts: uints("counts")?,
                    bytes: uints("bytes")?,
                });
            }
            report.matrix = Some(MatrixSection { n_ranks, tags });
        }

        // Schema v3 section; absent in non-serving reports and older docs.
        if let Some(s) = v.get("serving") {
            let mut latency_hist = Vec::new();
            for b in arr_field(s, "latency_hist")? {
                latency_hist.push((u64_field(b, "slots")?, u64_field(b, "count")?));
            }
            // v7 additions parse optionally so v3..v6 documents still load.
            let opt_hist = |key: &str| -> Result<Vec<(u64, u64)>, String> {
                let mut hist = Vec::new();
                if let Some(J::Arr(items)) = s.get(key) {
                    for b in items {
                        hist.push((u64_field(b, "slots")?, u64_field(b, "count")?));
                    }
                }
                Ok(hist)
            };
            let client_hist = opt_hist("client_hist")?;
            let mut tenants = Vec::new();
            if let Some(J::Arr(items)) = s.get("tenants") {
                for t in items {
                    tenants.push(TenantSloSection {
                        name: str_field(t, "name")?,
                        share_pct: u64_field(t, "share_pct")?,
                        offered: u64_field(t, "offered")?,
                        admitted: u64_field(t, "admitted")?,
                        answered: u64_field(t, "answered")?,
                        cache_hits: u64_field(t, "cache_hits")?,
                        shed_overload: u64_field(t, "shed_overload")?,
                        shed_deadline: u64_field(t, "shed_deadline")?,
                        degraded: u64_field(t, "degraded")?,
                        slo_attainment: f64_field(t, "slo_attainment")?,
                        p50_ns: u64_field(t, "p50_ns")?,
                        p99_ns: u64_field(t, "p99_ns")?,
                        latency_hist: {
                            let mut hist = Vec::new();
                            for b in arr_field(t, "latency_hist")? {
                                hist.push((u64_field(b, "slots")?, u64_field(b, "count")?));
                            }
                            hist
                        },
                    });
                }
            }
            report.serving = Some(ServingSection {
                serve_seed: u64_field(s, "serve_seed")?,
                slot_ns: u64_field(s, "slot_ns")?,
                slots: u64_field(s, "slots")?,
                offered: u64_field(s, "offered")?,
                admitted: u64_field(s, "admitted")?,
                answered: u64_field(s, "answered")?,
                cache_hits: u64_field(s, "cache_hits")?,
                cache_evictions: u64_field(s, "cache_evictions")?,
                shed_deadline: u64_field(s, "shed_deadline")?,
                shed_overload: u64_field(s, "shed_overload")?,
                degraded: u64_field(s, "degraded")?,
                max_queue_depth: u64_field(s, "max_queue_depth")?,
                p50_ns: u64_field(s, "p50_ns")?,
                p95_ns: u64_field(s, "p95_ns")?,
                p99_ns: u64_field(s, "p99_ns")?,
                mean_latency_ns: f64_field(s, "mean_latency_ns")?,
                latency_hist,
                client_p50_ns: s.get("client_p50_ns").and_then(J::as_u64).unwrap_or(0),
                client_p99_ns: s.get("client_p99_ns").and_then(J::as_u64).unwrap_or(0),
                client_hist,
                tenants,
                result_digest: u64::from_str_radix(&str_field(s, "result_digest")?, 16)
                    .map_err(|e| format!("bad result_digest: {e}"))?,
            });
        }

        // Schema v4 additions; absent in older documents.
        report.dropped_spans = v.get("dropped_spans").and_then(J::as_u64).unwrap_or(0);

        if let Some(c) = v.get("critical_path") {
            let f64s = |key: &str| -> Result<Vec<f64>, String> {
                arr_field(c, key)?
                    .iter()
                    .map(|x| x.as_f64().ok_or_else(|| format!("bad entry in '{key}'")))
                    .collect()
            };
            let u64s = |key: &str| -> Result<Vec<u64>, String> {
                arr_field(c, key)?
                    .iter()
                    .map(|x| x.as_u64().ok_or_else(|| format!("bad entry in '{key}'")))
                    .collect()
            };
            let mut phase_attribution = Vec::new();
            for p in arr_field(c, "phase_attribution")? {
                phase_attribution.push(PhaseAttribution {
                    index: u64_field(p, "index")?,
                    total_ns: u64_field(p, "total_ns")?,
                    compute_ns: u64_field(p, "compute_ns")?,
                    comm_ns: u64_field(p, "comm_ns")?,
                    stall_ns: u64_field(p, "stall_ns")?,
                    retransmit_ns: u64_field(p, "retransmit_ns")?,
                    critical_rank: u64_field(p, "critical_rank")?,
                });
            }
            report.critical_path = Some(CriticalPathSection {
                n_ranks: u64_field(c, "n_ranks")?,
                phases: u64_field(c, "phases")?,
                critical_path_ns: u64_field(c, "critical_path_ns")?,
                collective_ns: u64_field(c, "collective_ns")?,
                compute_ns: u64_field(c, "compute_ns")?,
                comm_ns: u64_field(c, "comm_ns")?,
                stall_ns: u64_field(c, "stall_ns")?,
                retransmit_ns: u64_field(c, "retransmit_ns")?,
                rank_slack_ns: f64s("rank_slack_ns")?,
                rank_critical_phases: u64s("rank_critical_phases")?,
                straggler_score: f64_field(c, "straggler_score")?,
                phase_attribution,
            });
        }

        // Schema v5 section; absent for non-RNN runs and older documents.
        if let Some(r) = v.get("rnn") {
            let mut rounds = Vec::new();
            for rd in arr_field(r, "rounds")? {
                rounds.push(RnnRoundReport {
                    outer: u64_field(rd, "outer")?,
                    inner: u64_field(rd, "inner")?,
                    pairs: u64_field(rd, "pairs")?,
                    pruned: u64_field(rd, "pruned")?,
                    added: u64_field(rd, "added")?,
                });
            }
            let reverse_added = arr_field(r, "reverse_added")?
                .iter()
                .map(|x| x.as_u64().ok_or("bad entry in 'reverse_added'".to_string()))
                .collect::<Result<Vec<u64>, String>>()?;
            report.rnn = Some(RnnSection {
                t1: u64_field(r, "t1")?,
                t2: u64_field(r, "t2")?,
                k0: u64_field(r, "k0")?,
                r: u64_field(r, "r")?,
                rounds,
                reverse_added,
                dist_evals: u64_field(r, "dist_evals")?,
                repaired: u64_field(r, "repaired")?,
            });
        }

        // Schema v6 additions; absent in older documents.
        if let Some(per_rank) = v.get("dropped_spans_per_rank").and_then(J::as_arr) {
            report.dropped_spans_per_rank = per_rank
                .iter()
                .map(|x| {
                    x.as_u64()
                        .ok_or("bad entry in 'dropped_spans_per_rank'".to_string())
                })
                .collect::<Result<Vec<u64>, String>>()?;
        }

        if let Some(q) = v.get("query_forensics") {
            let mut stage_hists = Vec::new();
            for h in arr_field(q, "stage_hists")? {
                let mut buckets = Vec::new();
                for b in arr_field(h, "buckets")? {
                    buckets.push((u64_field(b, "slots")?, u64_field(b, "count")?));
                }
                stage_hists.push((str_field(h, "stage")?, buckets));
            }
            let mut exemplars = Vec::new();
            for e in arr_field(q, "exemplars")? {
                exemplars.push(QueryExemplar {
                    idx: u64_field(e, "idx")?,
                    pool_id: u64_field(e, "pool_id")?,
                    // v7; v6 exemplars carry no tenant.
                    tenant: e.get("tenant").and_then(J::as_u64).unwrap_or(0),
                    verdict: str_field(e, "verdict")?,
                    why: str_field(e, "why")?,
                    degrade_level: u64_field(e, "degrade_level")?,
                    cache_key_hash: u64::from_str_radix(&str_field(e, "cache_key_hash")?, 16)
                        .map_err(|err| format!("bad cache_key_hash: {err}"))?,
                    arrived_slot: u64_field(e, "arrived_slot")?,
                    done_slot: u64_field(e, "done_slot")?,
                    admission_slots: u64_field(e, "admission_slots")?,
                    batch_wait_slots: u64_field(e, "batch_wait_slots")?,
                    dispatch_slots: u64_field(e, "dispatch_slots")?,
                    search_slots: u64_field(e, "search_slots")?,
                    response_slots: u64_field(e, "response_slots")?,
                    latency_slots: u64_field(e, "latency_slots")?,
                    expansions: u64_field(e, "expansions")?,
                    dist_evals: u64_field(e, "dist_evals")?,
                    rounds: u64_field(e, "rounds")?,
                    deadline_miss: e
                        .get("deadline_miss")
                        .and_then(J::as_bool)
                        .ok_or("missing bool field 'deadline_miss'")?,
                });
            }
            report.query_forensics = Some(QueryForensicsSection {
                window_slots: u64_field(q, "window_slots")?,
                slow_n: u64_field(q, "slow_n")?,
                considered: u64_field(q, "considered")?,
                retained: u64_field(q, "retained")?,
                retained_slow: u64_field(q, "retained_slow")?,
                retained_exemplar: u64_field(q, "retained_exemplar")?,
                stage_hists,
                exemplars,
                digest: u64::from_str_radix(&str_field(q, "digest")?, 16)
                    .map_err(|err| format!("bad forensics digest: {err}"))?,
            });
        }

        // Schema v8 section; absent for namespace-less runs and older
        // documents.
        if let Some(vd) = v.get("vdb") {
            let mut namespaces = Vec::new();
            for ns in arr_field(vd, "namespaces")? {
                namespaces.push(VdbNamespaceSection {
                    name: str_field(ns, "name")?,
                    points: u64_field(ns, "points")?,
                    live: u64_field(ns, "live")?,
                    tombstones: u64_field(ns, "tombstones")?,
                    dead: u64_field(ns, "dead")?,
                    epoch: u64_field(ns, "epoch")?,
                    inserts: u64_field(ns, "inserts")?,
                    deletes: u64_field(ns, "deletes")?,
                    compactions: u64_field(ns, "compactions")?,
                });
            }
            let mut selectivity_hist = Vec::new();
            for b in arr_field(vd, "selectivity_hist")? {
                selectivity_hist.push((u64_field(b, "decile")?, u64_field(b, "count")?));
            }
            report.vdb = Some(VdbSection {
                namespaces,
                filtered_queries: u64_field(vd, "filtered_queries")?,
                cache_suppressed_ids: u64_field(vd, "cache_suppressed_ids")?,
                selectivity_hist,
            });
        }

        // Optional: absent in fault-free reports (pre-fault documents too).
        if let Some(f) = v.get("faults") {
            report.faults = Some(FaultSection {
                sim_seed: u64_field(f, "sim_seed")?,
                profile: str_field(f, "profile")?,
                dropped: u64_field(f, "dropped")?,
                duplicated: u64_field(f, "duplicated")?,
                delayed: u64_field(f, "delayed")?,
                stalls: u64_field(f, "stalls")?,
                jittered_flushes: u64_field(f, "jittered_flushes")?,
                retransmits: u64_field(f, "retransmits")?,
                dedup_discards: u64_field(f, "dedup_discards")?,
                forced_deliveries: u64_field(f, "forced_deliveries")?,
            });
        }

        Ok(report)
    }

    /// Parse a report from JSON text.
    pub fn parse(text: &str) -> Result<RunReport, String> {
        RunReport::from_json(&J::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_report() -> RunReport {
        let mut r = RunReport::new("dnnd-construct");
        r.param("input", "preset:blobs,n=1000")
            .param("seed", 42)
            .param("metric", "l2");
        r.n_ranks = 4;
        r.iterations = 6;
        r.distance_evals = 123_456;
        r.sim_secs = 1.5;
        r.wall_secs = 0.25;
        r.compute_secs = 0.9;
        r.comm_secs = 0.4;
        r.barrier_secs = 0.2;
        r.tags = vec![TagReport {
            tag: 14,
            name: "Type 1".into(),
            count: 100,
            bytes: 6_400,
            remote_count: 75,
            remote_bytes: 4_800,
        }];
        r.total_count = 100;
        r.total_bytes = 6_400;
        r.total_remote_count = 75;
        r.total_remote_bytes = 4_800;
        r.phases = vec![PhaseReport {
            index: 0,
            compute_secs: 0.1,
            comm_secs: 0.05,
            barrier_secs: 0.01,
            msgs: 10,
            bytes: 640,
        }];
        r.convergence = vec![
            ConvergencePoint {
                iteration: 0,
                updates: 500,
            },
            ConvergencePoint {
                iteration: 1,
                updates: 17,
            },
        ];
        r.recall = Some(0.97);
        let h = Histogram::new();
        for i in 1..=100 {
            h.record(i);
        }
        r.add_histograms(&[("flush_bytes".into(), h.snapshot())]);
        r.metric("queries_per_sec", 1234.5);
        r.series = vec![
            SeriesSnapshot {
                name: "send_buf_bytes".into(),
                rank: 0,
                points: vec![
                    SeriesPoint {
                        t_ns: 10_000,
                        value: 128.0,
                    },
                    SeriesPoint {
                        t_ns: 20_000,
                        value: 96.5,
                    },
                ],
            },
            SeriesSnapshot {
                name: "send_buf_bytes".into(),
                rank: 3,
                points: vec![SeriesPoint {
                    t_ns: 10_000,
                    value: 64.0,
                }],
            },
        ];
        r.matrix = Some(MatrixSection {
            n_ranks: 2,
            tags: vec![MatrixTagReport {
                tag: 14,
                name: "Type 1".into(),
                counts: vec![10, 20, 30, 40],
                bytes: vec![100, 200, 300, 6_400 - 600],
            }],
        });
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample_report();
        let text = r.to_json_string();
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn compact_round_trip_too() {
        let r = sample_report();
        let back = RunReport::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn none_recall_round_trips() {
        let mut r = sample_report();
        r.recall = None;
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back.recall, None);
    }

    #[test]
    fn fault_section_round_trips() {
        let mut r = sample_report();
        r.faults = Some(FaultSection {
            sim_seed: 424242,
            profile: "stormy".into(),
            dropped: 12,
            duplicated: 3,
            delayed: 9,
            stalls: 2,
            jittered_flushes: 40,
            retransmits: 15,
            dedup_discards: 5,
            forced_deliveries: 1,
        });
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.faults.as_ref().unwrap().sim_seed, 424242);
    }

    #[test]
    fn missing_fault_section_parses_as_none() {
        // Fault-free documents (including pre-fault schema v1 reports)
        // simply lack the key.
        let r = sample_report();
        let text = r.to_json_string();
        assert!(!text.contains("\"faults\""));
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.faults, None);
    }

    #[test]
    fn vdb_section_round_trips() {
        let mut r = sample_report();
        r.vdb = Some(VdbSection {
            namespaces: vec![VdbNamespaceSection {
                name: "prod".into(),
                points: 1_000,
                live: 930,
                tombstones: 20,
                dead: 50,
                epoch: 3,
                inserts: 12,
                deletes: 70,
                compactions: 2,
            }],
            filtered_queries: 44,
            cache_suppressed_ids: 5,
            selectivity_hist: vec![(1, 10), (4, 30), (9, 4)],
        });
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        let ns = &back.vdb.as_ref().unwrap().namespaces[0];
        assert_eq!(ns.live + ns.tombstones + ns.dead, ns.points);
    }

    #[test]
    fn missing_vdb_section_parses_as_none() {
        let r = sample_report();
        let text = r.to_json_string();
        assert!(!text.contains("\"vdb\""));
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.vdb, None);
    }

    #[test]
    fn rejects_future_schema_version_naming_both() {
        let text = sample_report()
            .to_json_string()
            .replace("\"schema_version\": 8", "\"schema_version\": 999");
        let err = RunReport::parse(&text).unwrap_err();
        assert!(
            err.contains("999"),
            "error must name the found version: {err}"
        );
        assert!(
            err.contains("v1") && err.contains("v8"),
            "error must name the supported range: {err}"
        );
        // v0 is below the supported range too.
        let text = sample_report()
            .to_json_string()
            .replace("\"schema_version\": 8", "\"schema_version\": 0");
        assert!(RunReport::parse(&text).is_err());
    }

    fn sample_serving() -> ServingSection {
        ServingSection {
            serve_seed: 777,
            slot_ns: 250_000,
            slots: 64,
            offered: 500,
            admitted: 430,
            answered: 400,
            cache_hits: 50,
            cache_evictions: 7,
            shed_deadline: 20,
            shed_overload: 20,
            degraded: 35,
            max_queue_depth: 48,
            p50_ns: 500_000,
            p95_ns: 1_750_000,
            p99_ns: 2_500_000,
            mean_latency_ns: 612_500.25,
            latency_hist: vec![(1, 300), (2, 80), (7, 15), (10, 5)],
            client_p50_ns: 750_000,
            client_p99_ns: 3_250_000,
            client_hist: vec![(1, 280), (3, 100), (13, 20)],
            tenants: vec![
                TenantSloSection {
                    name: "gold".into(),
                    share_pct: 50,
                    offered: 250,
                    admitted: 235,
                    answered: 215,
                    cache_hits: 30,
                    shed_overload: 5,
                    shed_deadline: 10,
                    degraded: 12,
                    slo_attainment: 0.98,
                    p50_ns: 500_000,
                    p99_ns: 2_000_000,
                    latency_hist: vec![(1, 180), (2, 35)],
                },
                TenantSloSection {
                    name: "free".into(),
                    share_pct: 50,
                    offered: 250,
                    admitted: 195,
                    answered: 185,
                    cache_hits: 20,
                    shed_overload: 15,
                    shed_deadline: 10,
                    degraded: 23,
                    slo_attainment: 0.82,
                    p50_ns: 650_000,
                    p99_ns: 2_500_000,
                    latency_hist: vec![(1, 120), (2, 45), (7, 15), (10, 5)],
                },
            ],
            result_digest: 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    #[test]
    fn serving_section_round_trips() {
        let mut r = sample_report();
        r.serving = Some(sample_serving());
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        let s = back.serving.unwrap();
        assert_eq!(s.latency_hist, vec![(1, 300), (2, 80), (7, 15), (10, 5)]);
        assert_eq!(s.result_digest, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(s.client_hist, vec![(1, 280), (3, 100), (13, 20)]);
        assert_eq!(s.tenants.len(), 2);
        assert_eq!(s.tenants[0].name, "gold");
        assert_eq!(s.tenants[1].latency_hist.len(), 4);
    }

    #[test]
    fn tenantless_serving_omits_the_tenants_key() {
        let mut r = sample_report();
        let mut s = sample_serving();
        s.tenants.clear();
        r.serving = Some(s);
        let text = r.to_json_string();
        assert!(!text.contains("\"tenants\""));
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back, r);
        assert!(back.serving.unwrap().tenants.is_empty());
    }

    #[test]
    fn accepts_v6_serving_without_client_or_tenant_fields() {
        // A v6 serving section lacks the client-perceived fields and the
        // tenants array — it must parse with zeros / empty vectors.
        let mut r = sample_report();
        r.serving = Some(sample_serving());
        let mut v = r.to_json();
        if let J::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "schema_version" {
                    *val = J::uint(6);
                }
                if k == "serving" {
                    if let J::Obj(sv) = val {
                        sv.retain(|(sk, _)| {
                            sk != "client_p50_ns"
                                && sk != "client_p99_ns"
                                && sk != "client_hist"
                                && sk != "tenants"
                        });
                    }
                }
            }
        }
        let back = RunReport::parse(&v.pretty()).unwrap();
        let s = back.serving.unwrap();
        assert_eq!(s.client_p50_ns, 0);
        assert_eq!(s.client_p99_ns, 0);
        assert!(s.client_hist.is_empty());
        assert!(s.tenants.is_empty());
        // The pre-v7 fields still read in full.
        assert_eq!(s.latency_hist, vec![(1, 300), (2, 80), (7, 15), (10, 5)]);
        assert_eq!(s.result_digest, 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn missing_serving_section_parses_as_none() {
        // Non-serving documents (including every pre-v3 report) simply
        // lack the key.
        let r = sample_report();
        let text = r.to_json_string();
        assert!(!text.contains("\"serving\""));
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.serving, None);
    }

    #[test]
    fn accepts_schema_v2_documents() {
        // A v2 document lacks serving/critical_path sections and carries
        // the old version stamp — it must still parse in full.
        let r = sample_report();
        let text = r
            .to_json_string()
            .replace("\"schema_version\": 8", "\"schema_version\": 2");
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.serving, None);
        assert_eq!(back.series, r.series);
        assert_eq!(back.matrix, r.matrix);
        assert_eq!(back.tags, r.tags);
    }

    #[test]
    fn accepts_schema_v3_documents() {
        // A v3 document has serving but no critical_path/dropped_spans keys
        // and the old version stamp — it must parse with both defaulted.
        let mut r = sample_report();
        r.serving = Some(sample_serving());
        let mut v = r.to_json();
        if let J::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "dropped_spans" && k != "critical_path");
            for (k, val) in fields.iter_mut() {
                if k == "schema_version" {
                    *val = J::uint(3);
                }
            }
        }
        let back = RunReport::parse(&v.pretty()).unwrap();
        assert_eq!(back.critical_path, None);
        assert_eq!(back.dropped_spans, 0);
        assert_eq!(back.serving, r.serving);
        assert_eq!(back.tags, r.tags);
    }

    #[test]
    fn accepts_schema_v1_documents() {
        // A v1 document is a v2 document minus the series/matrix keys with
        // the old version stamp — it must parse with empty telemetry.
        let mut r = sample_report();
        r.series.clear();
        r.matrix = None;
        let mut v = r.to_json();
        if let J::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "series" && k != "dropped_spans");
            for (k, val) in fields.iter_mut() {
                if k == "schema_version" {
                    *val = J::uint(1);
                }
            }
        }
        let text = v.pretty();
        assert!(text.contains("\"schema_version\": 1"));
        assert!(!text.contains("\"series\""));
        let back = RunReport::parse(&text).unwrap();
        assert!(back.series.is_empty());
        assert_eq!(back.matrix, None);
        assert_eq!(back.tags, r.tags); // aggregates still read
    }

    #[test]
    fn critical_path_section_and_dropped_spans_round_trip() {
        let mut r = sample_report();
        r.dropped_spans = 17;
        r.critical_path = Some(CriticalPathSection {
            n_ranks: 2,
            phases: 2,
            critical_path_ns: 12_000,
            collective_ns: 1_220,
            compute_ns: 7_000,
            comm_ns: 2_780,
            stall_ns: 600,
            retransmit_ns: 400,
            rank_slack_ns: vec![0.0, 5_644.5],
            rank_critical_phases: vec![2, 0],
            straggler_score: 0.25,
            phase_attribution: vec![PhaseAttribution {
                index: 0,
                total_ns: 10_003,
                compute_ns: 7_000,
                comm_ns: 2_003,
                stall_ns: 600,
                retransmit_ns: 400,
                critical_rank: 0,
            }],
        });
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        let c = back.critical_path.unwrap();
        assert_eq!(c.attribution_sum_ns(), c.critical_path_ns);
        assert_eq!(back.dropped_spans, 17);
    }

    fn sample_rnn() -> RnnSection {
        RnnSection {
            t1: 3,
            t2: 8,
            k0: 10,
            r: 30,
            rounds: vec![
                RnnRoundReport {
                    outer: 0,
                    inner: 0,
                    pairs: 4_200,
                    pruned: 310,
                    added: 295,
                },
                RnnRoundReport {
                    outer: 0,
                    inner: 1,
                    pairs: 900,
                    pruned: 40,
                    added: 12,
                },
            ],
            reverse_added: vec![1_800, 120, 7],
            dist_evals: 5_100,
            repaired: 2,
        }
    }

    #[test]
    fn rnn_section_round_trips() {
        let mut r = sample_report();
        r.rnn = Some(sample_rnn());
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        let s = back.rnn.unwrap();
        assert_eq!(s.rounds.len(), 2);
        assert_eq!(s.reverse_added, vec![1_800, 120, 7]);
        assert_eq!(s.dist_evals, 5_100);
        assert_eq!(s.repaired, 2);
    }

    #[test]
    fn missing_rnn_section_parses_as_none() {
        // Non-RNN documents (including every pre-v5 report) simply lack
        // the key.
        let r = sample_report();
        let text = r.to_json_string();
        assert!(!text.contains("\"rnn\""));
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.rnn, None);
    }

    #[test]
    fn accepts_schema_v4_documents() {
        // A v4 document has critical_path/dropped_spans but no rnn key and
        // the old version stamp — it must parse with rnn defaulted.
        let r = sample_report();
        let text = r
            .to_json_string()
            .replace("\"schema_version\": 8", "\"schema_version\": 4");
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.rnn, None);
        assert_eq!(back.tags, r.tags);
        assert_eq!(back.matrix, r.matrix);
    }

    #[test]
    fn accepts_schema_v5_documents() {
        // A v5 document has rnn but no query_forensics /
        // dropped_spans_per_rank keys and the old version stamp — it must
        // parse with both defaulted.
        let mut r = sample_report();
        r.rnn = Some(sample_rnn());
        let text = r
            .to_json_string()
            .replace("\"schema_version\": 8", "\"schema_version\": 5");
        assert!(!text.contains("\"query_forensics\""));
        assert!(!text.contains("\"dropped_spans_per_rank\""));
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.query_forensics, None);
        assert!(back.dropped_spans_per_rank.is_empty());
        assert_eq!(back.rnn, r.rnn);
        assert_eq!(back.tags, r.tags);
    }

    fn sample_forensics() -> QueryForensicsSection {
        QueryForensicsSection {
            window_slots: 8,
            slow_n: 4,
            considered: 150,
            retained: 2,
            retained_slow: 1,
            retained_exemplar: 1,
            stage_hists: vec![
                ("admission".into(), vec![(0, 150)]),
                ("batch_wait".into(), vec![(0, 100), (2, 50)]),
                ("dispatch".into(), vec![(0, 140), (4, 10)]),
                ("search".into(), vec![(1, 150)]),
                ("response".into(), vec![(0, 150)]),
            ],
            exemplars: vec![
                QueryExemplar {
                    idx: 17,
                    pool_id: 41,
                    tenant: 1,
                    verdict: "answered".into(),
                    why: "slow|deadline_miss".into(),
                    degrade_level: 1,
                    cache_key_hash: 0xABCD_EF01_2345_6789,
                    arrived_slot: 10,
                    done_slot: 17,
                    admission_slots: 0,
                    batch_wait_slots: 2,
                    dispatch_slots: 4,
                    search_slots: 1,
                    response_slots: 0,
                    latency_slots: 7,
                    expansions: 12,
                    dist_evals: 340,
                    rounds: 13,
                    deadline_miss: true,
                },
                QueryExemplar {
                    idx: 3,
                    pool_id: 9,
                    tenant: 0,
                    verdict: "shed_overload".into(),
                    why: "shed".into(),
                    degrade_level: 0,
                    cache_key_hash: 0x0000_0000_0000_0001,
                    arrived_slot: 2,
                    done_slot: 2,
                    admission_slots: 0,
                    batch_wait_slots: 0,
                    dispatch_slots: 0,
                    search_slots: 0,
                    response_slots: 0,
                    latency_slots: 0,
                    expansions: 0,
                    dist_evals: 0,
                    rounds: 0,
                    deadline_miss: false,
                },
            ],
            digest: 0xFEED_FACE_0123_4567,
        }
    }

    #[test]
    fn query_forensics_section_round_trips() {
        let mut r = sample_report();
        r.query_forensics = Some(sample_forensics());
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        let q = back.query_forensics.unwrap();
        assert_eq!(q.exemplars.len(), 2);
        // Hex-string fields survive the trip without double rounding.
        assert_eq!(q.exemplars[0].cache_key_hash, 0xABCD_EF01_2345_6789);
        assert_eq!(q.digest, 0xFEED_FACE_0123_4567);
        assert!(q.exemplars[0].deadline_miss);
        assert_eq!(q.exemplars[0].tenant, 1);
        assert_eq!(q.exemplars[1].tenant, 0);
        // The waterfall invariant holds for every exemplar.
        for e in &q.exemplars {
            assert_eq!(e.stage_sum(), e.latency_slots);
        }
    }

    #[test]
    fn missing_query_forensics_parses_as_none() {
        let text = sample_report().to_json_string();
        assert!(!text.contains("\"query_forensics\""));
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.query_forensics, None);
    }

    #[test]
    fn dropped_spans_per_rank_round_trips_and_sums() {
        let mut r = sample_report();
        r.set_dropped_spans_per_rank(vec![0, 12, 0, 5]);
        assert_eq!(r.dropped_spans, 17);
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back.dropped_spans_per_rank, vec![0, 12, 0, 5]);
        assert_eq!(back.dropped_spans, 17);
        assert_eq!(back, r);
    }

    #[test]
    fn missing_critical_path_section_parses_as_none() {
        let text = sample_report().to_json_string();
        assert!(!text.contains("\"critical_path\""));
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.critical_path, None);
    }

    #[test]
    fn series_and_matrix_round_trip() {
        let r = sample_report();
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back.series, r.series);
        assert_eq!(back.matrix, r.matrix);
        let m = back.matrix.unwrap();
        assert_eq!(m.total_counts(), vec![10, 20, 30, 40]);
        assert_eq!(m.total_counts().iter().sum::<u64>(), 100); // == tag count
        assert_eq!(m.total_bytes().iter().sum::<u64>(), 6_400); // == tag bytes
    }

    #[test]
    fn rejects_malformed_matrix_cells() {
        // Cell-count mismatch with n_ranks² must be a parse error, not a
        // silently truncated matrix.
        let mut r = sample_report();
        r.matrix.as_mut().unwrap().tags[0].counts.pop();
        let err = RunReport::parse(&r.to_json_string()).unwrap_err();
        assert!(err.contains("cells"), "{err}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// Schema v2 serialize→parse is the identity on arbitrary series
        /// and matrix payloads (satellite: round-trip property test).
        #[test]
        fn v2_round_trip_property(
            n_ranks in 1u64..5,
            point_vals in proptest::collection::vec(0u64..1_000_000, 0..20),
            cell_seed in 0u64..1_000,
        ) {
            use proptest::prelude::*;
            let mut r = RunReport::new("prop");
            r.n_ranks = n_ranks;
            r.series = vec![SeriesSnapshot {
                name: "g".into(),
                rank: n_ranks - 1,
                points: point_vals
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| SeriesPoint {
                        t_ns: i as u64 * 10_000,
                        value: v as f64 / 16.0,
                    })
                    .collect(),
            }];
            let cells = (n_ranks * n_ranks) as usize;
            r.matrix = Some(MatrixSection {
                n_ranks,
                tags: vec![MatrixTagReport {
                    tag: 3,
                    name: "t".into(),
                    counts: (0..cells as u64).map(|i| i * cell_seed).collect(),
                    bytes: (0..cells as u64).map(|i| i + cell_seed).collect(),
                }],
            });
            let back = RunReport::parse(&r.to_json_string()).unwrap();
            prop_assert_eq!(back, r);
        }

        /// Schema v3 serialize→parse is the identity on arbitrary serving
        /// sections (counters, histogram buckets, digest).
        #[test]
        fn v3_serving_round_trip_property(
            // Seeds ride the JSON number channel (f64), so stay in the
            // exactly-representable range; the digest is hex-encoded and
            // covers the full 64 bits.
            seed in 0u64..(1 << 50),
            counts in proptest::collection::vec(0u64..10_000, 0..16),
            digest in proptest::prelude::any::<u64>(),
        ) {
            use proptest::prelude::*;
            let mut r = RunReport::new("prop-serve");
            r.serving = Some(ServingSection {
                serve_seed: seed,
                slot_ns: 1 + seed % 1_000_000,
                offered: counts.iter().sum(),
                latency_hist: counts
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (i as u64 + 1, c))
                    .collect(),
                result_digest: digest,
                ..Default::default()
            });
            let back = RunReport::parse(&r.to_json_string()).unwrap();
            prop_assert_eq!(back, r);
        }
    }

    #[test]
    fn histogram_summary_fields() {
        let r = sample_report();
        let h = &r.histograms[0];
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert!(h.p50 >= 45 && h.p50 <= 50);
    }
}
