//! The unified run report: one JSON document per run consolidating message
//! statistics, phase records, convergence trajectory, histograms, and
//! (for query runs) recall.
//!
//! All field types are local to `obs` so the crate stays dependency-free;
//! the binaries translate from `ygm`/engine types when filling one in.

use crate::hist::HistogramSnapshot;
use crate::json::JsonValue as J;
use crate::timeseries::{SeriesPoint, SeriesSnapshot};

/// Report schema version; bump on breaking layout changes.
///
/// v1: aggregates only (tags, totals, phases, convergence, histograms).
/// v2: adds continuous telemetry — per-rank `series` sampled on the
///     virtual clock and the rank×rank×tag traffic `matrix`.
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema this parser still accepts. v1 documents parse with empty
/// `series` and no `matrix`.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Per-message-tag traffic totals (mirrors `ygm`'s `TagStats` plus identity).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TagReport {
    pub tag: u64,
    pub name: String,
    pub count: u64,
    pub bytes: u64,
    pub remote_count: u64,
    pub remote_bytes: u64,
}

/// One barrier-to-barrier phase of virtual time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseReport {
    pub index: u64,
    pub compute_secs: f64,
    pub comm_secs: f64,
    pub barrier_secs: f64,
    pub msgs: u64,
    pub bytes: u64,
}

/// One NN-Descent iteration's convergence sample.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvergencePoint {
    pub iteration: u64,
    /// Successful heap updates (the paper's `c` termination counter).
    pub updates: u64,
}

/// Summary statistics of one named histogram.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistReport {
    pub name: String,
    pub count: u64,
    pub mean: f64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistReport {
    pub fn from_snapshot(name: &str, s: &HistogramSnapshot) -> Self {
        HistReport {
            name: name.to_string(),
            count: s.count,
            mean: s.mean(),
            min: s.min,
            max: s.max,
            p50: s.p50(),
            p95: s.p95(),
            p99: s.p99(),
        }
    }
}

/// Injected-fault and reliable-delivery counters from a simulation-tested
/// run (mirrors `ygm`'s `FaultReport`). Present only when the producing
/// world ran under a fault plan; the JSON key is omitted otherwise, which
/// keeps fault-free reports byte-identical to schema v1 documents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSection {
    /// Seed that replays this run's fault schedule (`--sim-seed`).
    pub sim_seed: u64,
    /// Fault profile name (`clean` / `lossy` / `stormy` / `custom`).
    pub profile: String,
    pub dropped: u64,
    pub duplicated: u64,
    pub delayed: u64,
    pub stalls: u64,
    pub jittered_flushes: u64,
    pub retransmits: u64,
    pub dedup_discards: u64,
    pub forced_deliveries: u64,
}

/// One tag's rank×rank traffic counts (mirrors `ygm`'s traffic matrix).
///
/// `counts[src * n_ranks + dest]` / `bytes[...]` hold message and byte
/// totals for this tag on the (src → dest) edge, *including* the diagonal
/// (rank-local sends), so each tag's matrix sums to the corresponding
/// [`TagReport::count`] / [`TagReport::bytes`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatrixTagReport {
    pub tag: u64,
    pub name: String,
    /// Row-major `n_ranks × n_ranks` message counts.
    pub counts: Vec<u64>,
    /// Row-major `n_ranks × n_ranks` byte totals.
    pub bytes: Vec<u64>,
}

/// The full rank×rank×tag traffic matrix of a run (schema v2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatrixSection {
    pub n_ranks: u64,
    /// Per-tag matrices, sorted by tag; tags with no traffic are omitted.
    pub tags: Vec<MatrixTagReport>,
}

impl MatrixSection {
    /// Message counts summed over tags, row-major `n_ranks × n_ranks`.
    pub fn total_counts(&self) -> Vec<u64> {
        self.sum_over_tags(|t| &t.counts)
    }

    /// Byte totals summed over tags, row-major `n_ranks × n_ranks`.
    pub fn total_bytes(&self) -> Vec<u64> {
        self.sum_over_tags(|t| &t.bytes)
    }

    fn sum_over_tags(&self, f: impl Fn(&MatrixTagReport) -> &Vec<u64>) -> Vec<u64> {
        let n = (self.n_ranks * self.n_ranks) as usize;
        let mut out = vec![0u64; n];
        for t in &self.tags {
            for (acc, v) in out.iter_mut().zip(f(t)) {
                *acc += v;
            }
        }
        out
    }
}

/// The consolidated per-run report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Producing binary or driver (e.g. `dnnd-construct`).
    pub binary: String,
    /// Free-form string parameters (dataset path, metric, seed, ...).
    pub params: Vec<(String, String)>,
    pub n_ranks: u64,
    /// Descent iterations executed (0 for pure query runs).
    pub iterations: u64,
    pub distance_evals: u64,
    /// Virtual (simulated cluster) time, seconds.
    pub sim_secs: f64,
    /// Real wall-clock time, seconds.
    pub wall_secs: f64,
    pub compute_secs: f64,
    pub comm_secs: f64,
    pub barrier_secs: f64,
    /// Per-tag traffic, sorted by tag.
    pub tags: Vec<TagReport>,
    /// Traffic totals over all tags.
    pub total_count: u64,
    pub total_bytes: u64,
    pub total_remote_count: u64,
    pub total_remote_bytes: u64,
    pub phases: Vec<PhaseReport>,
    pub convergence: Vec<ConvergencePoint>,
    /// Recall@k against ground truth, when measured.
    pub recall: Option<f64>,
    pub histograms: Vec<HistReport>,
    /// Free-form numeric metrics (e.g. `queries_per_sec`).
    pub extra: Vec<(String, f64)>,
    /// Fault-injection counters; `None` for fault-free runs.
    pub faults: Option<FaultSection>,
    /// Per-rank gauge series sampled on the virtual clock (schema v2);
    /// empty when the run was not traced or predates v2.
    pub series: Vec<SeriesSnapshot>,
    /// Rank×rank×tag traffic matrix (schema v2); `None` when the producer
    /// did not record one (v1 documents, single-report tools).
    pub matrix: Option<MatrixSection>,
}

impl RunReport {
    pub fn new(binary: impl Into<String>) -> Self {
        RunReport {
            binary: binary.into(),
            ..Default::default()
        }
    }

    pub fn param(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        self.params.push((key.into(), value.to_string()));
        self
    }

    pub fn metric(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.extra.push((key.into(), value));
        self
    }

    /// Append histogram summaries from tracer snapshots.
    pub fn add_histograms(&mut self, snaps: &[(String, HistogramSnapshot)]) -> &mut Self {
        for (name, s) in snaps {
            self.histograms.push(HistReport::from_snapshot(name, s));
        }
        self
    }

    pub fn to_json(&self) -> J {
        let mut fields = vec![
            ("schema_version".into(), J::uint(SCHEMA_VERSION)),
            ("binary".into(), J::str(&self.binary)),
            (
                "params".into(),
                J::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), J::str(v)))
                        .collect(),
                ),
            ),
            ("n_ranks".into(), J::uint(self.n_ranks)),
            ("iterations".into(), J::uint(self.iterations)),
            ("distance_evals".into(), J::uint(self.distance_evals)),
            ("sim_secs".into(), J::Num(self.sim_secs)),
            ("wall_secs".into(), J::Num(self.wall_secs)),
            (
                "breakdown".into(),
                J::Obj(vec![
                    ("compute_secs".into(), J::Num(self.compute_secs)),
                    ("comm_secs".into(), J::Num(self.comm_secs)),
                    ("barrier_secs".into(), J::Num(self.barrier_secs)),
                ]),
            ),
            (
                "tags".into(),
                J::Arr(
                    self.tags
                        .iter()
                        .map(|t| {
                            J::Obj(vec![
                                ("tag".into(), J::uint(t.tag)),
                                ("name".into(), J::str(&t.name)),
                                ("count".into(), J::uint(t.count)),
                                ("bytes".into(), J::uint(t.bytes)),
                                ("remote_count".into(), J::uint(t.remote_count)),
                                ("remote_bytes".into(), J::uint(t.remote_bytes)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "total".into(),
                J::Obj(vec![
                    ("count".into(), J::uint(self.total_count)),
                    ("bytes".into(), J::uint(self.total_bytes)),
                    ("remote_count".into(), J::uint(self.total_remote_count)),
                    ("remote_bytes".into(), J::uint(self.total_remote_bytes)),
                ]),
            ),
            (
                "phases".into(),
                J::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            J::Obj(vec![
                                ("index".into(), J::uint(p.index)),
                                ("compute_secs".into(), J::Num(p.compute_secs)),
                                ("comm_secs".into(), J::Num(p.comm_secs)),
                                ("barrier_secs".into(), J::Num(p.barrier_secs)),
                                ("msgs".into(), J::uint(p.msgs)),
                                ("bytes".into(), J::uint(p.bytes)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "convergence".into(),
                J::Arr(
                    self.convergence
                        .iter()
                        .map(|c| {
                            J::Obj(vec![
                                ("iteration".into(), J::uint(c.iteration)),
                                ("updates".into(), J::uint(c.updates)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("recall".into(), self.recall.map(J::Num).unwrap_or(J::Null)),
            (
                "histograms".into(),
                J::Arr(
                    self.histograms
                        .iter()
                        .map(|h| {
                            J::Obj(vec![
                                ("name".into(), J::str(&h.name)),
                                ("count".into(), J::uint(h.count)),
                                ("mean".into(), J::Num(h.mean)),
                                ("min".into(), J::uint(h.min)),
                                ("max".into(), J::uint(h.max)),
                                ("p50".into(), J::uint(h.p50)),
                                ("p95".into(), J::uint(h.p95)),
                                ("p99".into(), J::uint(h.p99)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "extra".into(),
                J::Obj(
                    self.extra
                        .iter()
                        .map(|(k, v)| (k.clone(), J::Num(*v)))
                        .collect(),
                ),
            ),
        ];
        fields.push((
            "series".into(),
            J::Arr(
                self.series
                    .iter()
                    .map(|s| {
                        J::Obj(vec![
                            ("name".into(), J::str(&s.name)),
                            ("rank".into(), J::uint(s.rank)),
                            (
                                "points".into(),
                                J::Arr(
                                    s.points
                                        .iter()
                                        .map(|p| {
                                            J::Obj(vec![
                                                ("t_ns".into(), J::uint(p.t_ns)),
                                                ("value".into(), J::Num(p.value)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ));
        if let Some(m) = &self.matrix {
            fields.push((
                "matrix".into(),
                J::Obj(vec![
                    ("n_ranks".into(), J::uint(m.n_ranks)),
                    (
                        "tags".into(),
                        J::Arr(
                            m.tags
                                .iter()
                                .map(|t| {
                                    J::Obj(vec![
                                        ("tag".into(), J::uint(t.tag)),
                                        ("name".into(), J::str(&t.name)),
                                        (
                                            "counts".into(),
                                            J::Arr(t.counts.iter().map(|&c| J::uint(c)).collect()),
                                        ),
                                        (
                                            "bytes".into(),
                                            J::Arr(t.bytes.iter().map(|&b| J::uint(b)).collect()),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(f) = &self.faults {
            fields.push((
                "faults".into(),
                J::Obj(vec![
                    ("sim_seed".into(), J::uint(f.sim_seed)),
                    ("profile".into(), J::str(&f.profile)),
                    ("dropped".into(), J::uint(f.dropped)),
                    ("duplicated".into(), J::uint(f.duplicated)),
                    ("delayed".into(), J::uint(f.delayed)),
                    ("stalls".into(), J::uint(f.stalls)),
                    ("jittered_flushes".into(), J::uint(f.jittered_flushes)),
                    ("retransmits".into(), J::uint(f.retransmits)),
                    ("dedup_discards".into(), J::uint(f.dedup_discards)),
                    ("forced_deliveries".into(), J::uint(f.forced_deliveries)),
                ]),
            ));
        }
        J::Obj(fields)
    }

    /// Pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Rebuild a report from its JSON form (inverse of [`Self::to_json`]).
    pub fn from_json(v: &J) -> Result<RunReport, String> {
        fn f64_field(v: &J, key: &str) -> Result<f64, String> {
            v.get(key)
                .and_then(J::as_f64)
                .ok_or_else(|| format!("missing number field '{key}'"))
        }
        fn u64_field(v: &J, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(J::as_u64)
                .ok_or_else(|| format!("missing integer field '{key}'"))
        }
        fn str_field(v: &J, key: &str) -> Result<String, String> {
            v.get(key)
                .and_then(J::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        }
        fn arr_field<'a>(v: &'a J, key: &str) -> Result<&'a [J], String> {
            v.get(key)
                .and_then(J::as_arr)
                .ok_or_else(|| format!("missing array field '{key}'"))
        }

        let version = u64_field(v, "schema_version")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported schema_version {version} \
                 (this build reads v{MIN_SCHEMA_VERSION} through v{SCHEMA_VERSION})"
            ));
        }

        let mut report = RunReport::new(str_field(v, "binary")?);

        if let Some(J::Obj(fields)) = v.get("params") {
            for (k, val) in fields {
                report
                    .params
                    .push((k.clone(), val.as_str().unwrap_or_default().to_string()));
            }
        }

        report.n_ranks = u64_field(v, "n_ranks")?;
        report.iterations = u64_field(v, "iterations")?;
        report.distance_evals = u64_field(v, "distance_evals")?;
        report.sim_secs = f64_field(v, "sim_secs")?;
        report.wall_secs = f64_field(v, "wall_secs")?;

        let breakdown = v.get("breakdown").ok_or("missing 'breakdown'")?;
        report.compute_secs = f64_field(breakdown, "compute_secs")?;
        report.comm_secs = f64_field(breakdown, "comm_secs")?;
        report.barrier_secs = f64_field(breakdown, "barrier_secs")?;

        for t in arr_field(v, "tags")? {
            report.tags.push(TagReport {
                tag: u64_field(t, "tag")?,
                name: str_field(t, "name")?,
                count: u64_field(t, "count")?,
                bytes: u64_field(t, "bytes")?,
                remote_count: u64_field(t, "remote_count")?,
                remote_bytes: u64_field(t, "remote_bytes")?,
            });
        }

        let total = v.get("total").ok_or("missing 'total'")?;
        report.total_count = u64_field(total, "count")?;
        report.total_bytes = u64_field(total, "bytes")?;
        report.total_remote_count = u64_field(total, "remote_count")?;
        report.total_remote_bytes = u64_field(total, "remote_bytes")?;

        for p in arr_field(v, "phases")? {
            report.phases.push(PhaseReport {
                index: u64_field(p, "index")?,
                compute_secs: f64_field(p, "compute_secs")?,
                comm_secs: f64_field(p, "comm_secs")?,
                barrier_secs: f64_field(p, "barrier_secs")?,
                msgs: u64_field(p, "msgs")?,
                bytes: u64_field(p, "bytes")?,
            });
        }

        for c in arr_field(v, "convergence")? {
            report.convergence.push(ConvergencePoint {
                iteration: u64_field(c, "iteration")?,
                updates: u64_field(c, "updates")?,
            });
        }

        report.recall = v.get("recall").and_then(J::as_f64);

        for h in arr_field(v, "histograms")? {
            report.histograms.push(HistReport {
                name: str_field(h, "name")?,
                count: u64_field(h, "count")?,
                mean: f64_field(h, "mean")?,
                min: u64_field(h, "min")?,
                max: u64_field(h, "max")?,
                p50: u64_field(h, "p50")?,
                p95: u64_field(h, "p95")?,
                p99: u64_field(h, "p99")?,
            });
        }

        if let Some(J::Obj(fields)) = v.get("extra") {
            for (k, val) in fields {
                report.extra.push((k.clone(), val.as_f64().unwrap_or(0.0)));
            }
        }

        // Schema v2 sections; v1 documents simply lack the keys.
        if let Some(series) = v.get("series").and_then(J::as_arr) {
            for s in series {
                let mut snap = SeriesSnapshot {
                    name: str_field(s, "name")?,
                    rank: u64_field(s, "rank")?,
                    points: Vec::new(),
                };
                for p in arr_field(s, "points")? {
                    snap.points.push(SeriesPoint {
                        t_ns: u64_field(p, "t_ns")?,
                        value: f64_field(p, "value")?,
                    });
                }
                report.series.push(snap);
            }
        }

        if let Some(m) = v.get("matrix") {
            let n_ranks = u64_field(m, "n_ranks")?;
            let cells = (n_ranks * n_ranks) as usize;
            let mut tags = Vec::new();
            for t in arr_field(m, "tags")? {
                let uints = |key: &str| -> Result<Vec<u64>, String> {
                    let arr = arr_field(t, key)?;
                    if arr.len() != cells {
                        return Err(format!(
                            "matrix '{key}' has {} cells (expected {cells})",
                            arr.len()
                        ));
                    }
                    arr.iter()
                        .map(|x| x.as_u64().ok_or_else(|| format!("bad cell in '{key}'")))
                        .collect()
                };
                tags.push(MatrixTagReport {
                    tag: u64_field(t, "tag")?,
                    name: str_field(t, "name")?,
                    counts: uints("counts")?,
                    bytes: uints("bytes")?,
                });
            }
            report.matrix = Some(MatrixSection { n_ranks, tags });
        }

        // Optional: absent in fault-free reports (pre-fault documents too).
        if let Some(f) = v.get("faults") {
            report.faults = Some(FaultSection {
                sim_seed: u64_field(f, "sim_seed")?,
                profile: str_field(f, "profile")?,
                dropped: u64_field(f, "dropped")?,
                duplicated: u64_field(f, "duplicated")?,
                delayed: u64_field(f, "delayed")?,
                stalls: u64_field(f, "stalls")?,
                jittered_flushes: u64_field(f, "jittered_flushes")?,
                retransmits: u64_field(f, "retransmits")?,
                dedup_discards: u64_field(f, "dedup_discards")?,
                forced_deliveries: u64_field(f, "forced_deliveries")?,
            });
        }

        Ok(report)
    }

    /// Parse a report from JSON text.
    pub fn parse(text: &str) -> Result<RunReport, String> {
        RunReport::from_json(&J::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_report() -> RunReport {
        let mut r = RunReport::new("dnnd-construct");
        r.param("input", "preset:blobs,n=1000")
            .param("seed", 42)
            .param("metric", "l2");
        r.n_ranks = 4;
        r.iterations = 6;
        r.distance_evals = 123_456;
        r.sim_secs = 1.5;
        r.wall_secs = 0.25;
        r.compute_secs = 0.9;
        r.comm_secs = 0.4;
        r.barrier_secs = 0.2;
        r.tags = vec![TagReport {
            tag: 14,
            name: "Type 1".into(),
            count: 100,
            bytes: 6_400,
            remote_count: 75,
            remote_bytes: 4_800,
        }];
        r.total_count = 100;
        r.total_bytes = 6_400;
        r.total_remote_count = 75;
        r.total_remote_bytes = 4_800;
        r.phases = vec![PhaseReport {
            index: 0,
            compute_secs: 0.1,
            comm_secs: 0.05,
            barrier_secs: 0.01,
            msgs: 10,
            bytes: 640,
        }];
        r.convergence = vec![
            ConvergencePoint {
                iteration: 0,
                updates: 500,
            },
            ConvergencePoint {
                iteration: 1,
                updates: 17,
            },
        ];
        r.recall = Some(0.97);
        let h = Histogram::new();
        for i in 1..=100 {
            h.record(i);
        }
        r.add_histograms(&[("flush_bytes".into(), h.snapshot())]);
        r.metric("queries_per_sec", 1234.5);
        r.series = vec![
            SeriesSnapshot {
                name: "send_buf_bytes".into(),
                rank: 0,
                points: vec![
                    SeriesPoint {
                        t_ns: 10_000,
                        value: 128.0,
                    },
                    SeriesPoint {
                        t_ns: 20_000,
                        value: 96.5,
                    },
                ],
            },
            SeriesSnapshot {
                name: "send_buf_bytes".into(),
                rank: 3,
                points: vec![SeriesPoint {
                    t_ns: 10_000,
                    value: 64.0,
                }],
            },
        ];
        r.matrix = Some(MatrixSection {
            n_ranks: 2,
            tags: vec![MatrixTagReport {
                tag: 14,
                name: "Type 1".into(),
                counts: vec![10, 20, 30, 40],
                bytes: vec![100, 200, 300, 6_400 - 600],
            }],
        });
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample_report();
        let text = r.to_json_string();
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn compact_round_trip_too() {
        let r = sample_report();
        let back = RunReport::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn none_recall_round_trips() {
        let mut r = sample_report();
        r.recall = None;
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back.recall, None);
    }

    #[test]
    fn fault_section_round_trips() {
        let mut r = sample_report();
        r.faults = Some(FaultSection {
            sim_seed: 424242,
            profile: "stormy".into(),
            dropped: 12,
            duplicated: 3,
            delayed: 9,
            stalls: 2,
            jittered_flushes: 40,
            retransmits: 15,
            dedup_discards: 5,
            forced_deliveries: 1,
        });
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.faults.as_ref().unwrap().sim_seed, 424242);
    }

    #[test]
    fn missing_fault_section_parses_as_none() {
        // Fault-free documents (including pre-fault schema v1 reports)
        // simply lack the key.
        let r = sample_report();
        let text = r.to_json_string();
        assert!(!text.contains("\"faults\""));
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.faults, None);
    }

    #[test]
    fn rejects_future_schema_version_naming_both() {
        let text = sample_report()
            .to_json_string()
            .replace("\"schema_version\": 2", "\"schema_version\": 999");
        let err = RunReport::parse(&text).unwrap_err();
        assert!(
            err.contains("999"),
            "error must name the found version: {err}"
        );
        assert!(
            err.contains("v1") && err.contains("v2"),
            "error must name the supported range: {err}"
        );
        // v0 is below the supported range too.
        let text = sample_report()
            .to_json_string()
            .replace("\"schema_version\": 2", "\"schema_version\": 0");
        assert!(RunReport::parse(&text).is_err());
    }

    #[test]
    fn accepts_schema_v1_documents() {
        // A v1 document is a v2 document minus the series/matrix keys with
        // the old version stamp — it must parse with empty telemetry.
        let mut r = sample_report();
        r.series.clear();
        r.matrix = None;
        let mut v = r.to_json();
        if let J::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "series");
            for (k, val) in fields.iter_mut() {
                if k == "schema_version" {
                    *val = J::uint(1);
                }
            }
        }
        let text = v.pretty();
        assert!(text.contains("\"schema_version\": 1"));
        assert!(!text.contains("\"series\""));
        let back = RunReport::parse(&text).unwrap();
        assert!(back.series.is_empty());
        assert_eq!(back.matrix, None);
        assert_eq!(back.tags, r.tags); // aggregates still read
    }

    #[test]
    fn series_and_matrix_round_trip() {
        let r = sample_report();
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back.series, r.series);
        assert_eq!(back.matrix, r.matrix);
        let m = back.matrix.unwrap();
        assert_eq!(m.total_counts(), vec![10, 20, 30, 40]);
        assert_eq!(m.total_counts().iter().sum::<u64>(), 100); // == tag count
        assert_eq!(m.total_bytes().iter().sum::<u64>(), 6_400); // == tag bytes
    }

    #[test]
    fn rejects_malformed_matrix_cells() {
        // Cell-count mismatch with n_ranks² must be a parse error, not a
        // silently truncated matrix.
        let mut r = sample_report();
        r.matrix.as_mut().unwrap().tags[0].counts.pop();
        let err = RunReport::parse(&r.to_json_string()).unwrap_err();
        assert!(err.contains("cells"), "{err}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// Schema v2 serialize→parse is the identity on arbitrary series
        /// and matrix payloads (satellite: round-trip property test).
        #[test]
        fn v2_round_trip_property(
            n_ranks in 1u64..5,
            point_vals in proptest::collection::vec(0u64..1_000_000, 0..20),
            cell_seed in 0u64..1_000,
        ) {
            use proptest::prelude::*;
            let mut r = RunReport::new("prop");
            r.n_ranks = n_ranks;
            r.series = vec![SeriesSnapshot {
                name: "g".into(),
                rank: n_ranks - 1,
                points: point_vals
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| SeriesPoint {
                        t_ns: i as u64 * 10_000,
                        value: v as f64 / 16.0,
                    })
                    .collect(),
            }];
            let cells = (n_ranks * n_ranks) as usize;
            r.matrix = Some(MatrixSection {
                n_ranks,
                tags: vec![MatrixTagReport {
                    tag: 3,
                    name: "t".into(),
                    counts: (0..cells as u64).map(|i| i * cell_seed).collect(),
                    bytes: (0..cells as u64).map(|i| i + cell_seed).collect(),
                }],
            });
            let back = RunReport::parse(&r.to_json_string()).unwrap();
            prop_assert_eq!(back, r);
        }
    }

    #[test]
    fn histogram_summary_fields() {
        let r = sample_report();
        let h = &r.histograms[0];
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert!(h.p50 >= 45 && h.p50 <= 50);
    }
}
