//! Critical-path analysis over the happens-before DAG of a run.
//!
//! The simulated runtime is bulk-synchronous at the transport level: every
//! rank participates in every barrier, so the happens-before DAG on the
//! deterministic virtual clock is a chain of phase nodes — within a phase,
//! each rank's work is a parallel branch between the two enclosing barrier
//! nodes, and cross-rank message edges never skip a barrier. The longest
//! path through that DAG is therefore the sum over phases of the slowest
//! branch (the phase makespan the clock already charges) plus collective
//! synchronization time. That makes the critical-path length *exactly* the
//! final virtual clock reading — an invariant this module maintains to the
//! nanosecond and the report gate asserts (±0).
//!
//! What the analysis adds over the clock total is *attribution*: for each
//! phase, which rank the barrier waited on (the critical rank / straggler),
//! how much of the phase was compute vs communication vs stall vs
//! retransmit overhead, and how much slack every other rank had. All inputs
//! are `obs`-local (the `core` bridge converts from `ygm` phase records), so
//! this crate stays dependency-free.
//!
//! Attribution categories, per phase:
//!
//! * **compute** — the critical rank's distance-evaluation time.
//! * **comm** — the critical rank's send+receive link cost for application
//!   traffic, plus the barrier latency.
//! * **retransmit** — the critical rank's link cost for transport-level
//!   traffic (retransmitted and duplicated frames).
//! * **stall** — injected-fault time on the critical rank plus the residue
//!   of the makespan beyond the critical rank's own modelled work (time the
//!   phase was extended by *other* ranks' receive/fault maxima).
//!
//! The four buckets are integerized with a largest-remainder distribution
//! so they sum to the phase's exact clock increment; summed over phases and
//! adding collective time they reproduce the total virtual time with zero
//! error, on every rank count and fault plan.

/// Per-phase cost vectors, as recorded by the virtual clock. Mirrors
/// `ygm::PhaseRecord`'s attribution payload with `obs`-local types.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseCost {
    /// Zero-based phase index.
    pub index: u64,
    /// Exact nanoseconds this phase advanced the global clock by.
    pub total_ns: u64,
    /// Barrier latency charged to the phase, ns.
    pub barrier_ns: f64,
    /// Per-rank compute ns charged during the phase.
    pub rank_compute_ns: Vec<f64>,
    /// Per-rank send-side link cost of application traffic, ns.
    pub rank_send_ns: Vec<f64>,
    /// Per-rank receive-side link cost of application traffic, ns.
    pub rank_recv_ns: Vec<f64>,
    /// Per-rank send-side link cost of transport traffic (retransmits,
    /// duplicates), ns.
    pub rank_transport_send_ns: Vec<f64>,
    /// Per-rank receive-side link cost of transport traffic, ns.
    pub rank_transport_recv_ns: Vec<f64>,
    /// Per-rank injected-fault time, ns.
    pub rank_fault_ns: Vec<f64>,
}

/// Cost of `rank` in vector `v`, zero when the record carries fewer ranks
/// than the world (a rank that never charged anything is absent, not an
/// error).
#[inline]
fn at(v: &[f64], rank: usize) -> f64 {
    v.get(rank).copied().unwrap_or(0.0)
}

impl PhaseCost {
    /// Total modelled work of `rank` in this phase, ns.
    pub fn rank_work_ns(&self, rank: usize) -> f64 {
        at(&self.rank_compute_ns, rank)
            + at(&self.rank_send_ns, rank)
            + at(&self.rank_recv_ns, rank)
            + at(&self.rank_transport_send_ns, rank)
            + at(&self.rank_transport_recv_ns, rank)
            + at(&self.rank_fault_ns, rank)
    }
}

/// One phase's integerized time attribution. The four buckets sum exactly
/// to `total_ns`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseAttribution {
    pub index: u64,
    /// Exact clock increment of the phase, ns.
    pub total_ns: u64,
    pub compute_ns: u64,
    pub comm_ns: u64,
    pub stall_ns: u64,
    pub retransmit_ns: u64,
    /// The rank with the most modelled work this phase — the straggler the
    /// barrier waited on. Ties break to the lowest rank.
    pub critical_rank: u64,
}

/// The `critical_path` report section (schema v4): happens-before
/// critical-path length, overall and per-phase time attribution, per-rank
/// slack, and the straggler-imbalance score.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CriticalPathSection {
    pub n_ranks: u64,
    /// Barrier-to-barrier phases analyzed.
    pub phases: u64,
    /// Longest path through the happens-before DAG, ns. Equals the final
    /// virtual clock reading exactly (see module docs).
    pub critical_path_ns: u64,
    /// Collective-only clock advances (allreduce/allgather synchronization
    /// outside message phases), ns.
    pub collective_ns: u64,
    /// Overall attribution; `compute + comm + stall + retransmit +
    /// collective == critical_path_ns` exactly.
    pub compute_ns: u64,
    pub comm_ns: u64,
    pub stall_ns: u64,
    pub retransmit_ns: u64,
    /// Per-rank slack: virtual ns the rank spent waiting at barriers for
    /// the per-phase critical rank, summed over phases.
    pub rank_slack_ns: Vec<f64>,
    /// Number of phases in which each rank was the critical rank.
    pub rank_critical_phases: Vec<u64>,
    /// Straggler-imbalance score in `[0, 1]`:
    /// `Σ_phases (max_work − mean_work) / Σ_phases max_work`. 0 means
    /// perfectly balanced phases; values near 1 mean one rank does all the
    /// waiting-for.
    pub straggler_score: f64,
    /// Per-phase attribution, in phase order.
    pub phase_attribution: Vec<PhaseAttribution>,
}

/// Distribute `total` integer nanoseconds across buckets proportionally to
/// the non-negative `weights`, using largest-remainder rounding so the
/// shares sum to `total` exactly. Ties in the remainder break to the lowest
/// bucket index, keeping the result deterministic. All-zero weights put the
/// whole total in bucket 0 (only reachable when `total` itself is 0 in
/// practice, since the barrier weight is part of bucket construction).
fn largest_remainder(total: u64, weights: &[f64]) -> Vec<u64> {
    let clamped: Vec<f64> = weights.iter().map(|w| w.max(0.0)).collect();
    let sum: f64 = clamped.iter().sum();
    if sum <= 0.0 {
        let mut out = vec![0u64; weights.len()];
        if let Some(first) = out.first_mut() {
            *first = total;
        }
        return out;
    }
    let exact: Vec<f64> = clamped.iter().map(|w| w / sum * total as f64).collect();
    let mut shares: Vec<u64> = exact.iter().map(|e| e.floor() as u64).collect();
    let assigned: u64 = shares.iter().sum();
    let mut leftover = total.saturating_sub(assigned);
    // Hand the leftover units to the buckets with the largest fractional
    // remainders; stable sort + index tiebreak keeps it deterministic.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    let mut next = 0usize;
    while leftover > 0 {
        shares[order[next % order.len()]] += 1;
        next += 1;
        leftover -= 1;
    }
    shares
}

/// Analyze the per-phase cost vectors of a finished run.
///
/// `total_virt_ns` is the final virtual clock reading; the difference
/// between it and the summed phase totals is attributed to collectives
/// (which advance the clock without producing a phase record).
pub fn analyze(phases: &[PhaseCost], total_virt_ns: u64, n_ranks: usize) -> CriticalPathSection {
    let mut section = CriticalPathSection {
        n_ranks: n_ranks as u64,
        phases: phases.len() as u64,
        rank_slack_ns: vec![0.0; n_ranks],
        rank_critical_phases: vec![0u64; n_ranks],
        ..Default::default()
    };
    let mut phase_total: u64 = 0;
    let mut sum_max_work = 0.0f64;
    let mut sum_imbalance = 0.0f64;
    for p in phases {
        phase_total += p.total_ns;
        // Critical rank: most modelled work, ties to the lowest rank.
        let mut critical = 0usize;
        let mut max_work = f64::MIN;
        let mut work_sum = 0.0f64;
        for r in 0..n_ranks {
            let w = p.rank_work_ns(r);
            work_sum += w;
            if w > max_work {
                max_work = w;
                critical = r;
            }
        }
        if n_ranks == 0 {
            continue;
        }
        let mean_work = work_sum / n_ranks as f64;
        sum_max_work += max_work;
        sum_imbalance += max_work - mean_work;
        section.rank_critical_phases[critical] += 1;
        for r in 0..n_ranks {
            section.rank_slack_ns[r] += max_work - p.rank_work_ns(r);
        }
        // Four-bucket split of the exact phase increment (see module docs).
        let compute_w = at(&p.rank_compute_ns, critical);
        let comm_w = at(&p.rank_send_ns, critical) + at(&p.rank_recv_ns, critical) + p.barrier_ns;
        let retransmit_w =
            at(&p.rank_transport_send_ns, critical) + at(&p.rank_transport_recv_ns, critical);
        let fault_w = at(&p.rank_fault_ns, critical);
        let modelled = compute_w + comm_w + retransmit_w + fault_w;
        let residue = (p.total_ns as f64 - modelled).max(0.0);
        let stall_w = fault_w + residue;
        let shares = largest_remainder(p.total_ns, &[compute_w, comm_w, stall_w, retransmit_w]);
        section.compute_ns += shares[0];
        section.comm_ns += shares[1];
        section.stall_ns += shares[2];
        section.retransmit_ns += shares[3];
        section.phase_attribution.push(PhaseAttribution {
            index: p.index,
            total_ns: p.total_ns,
            compute_ns: shares[0],
            comm_ns: shares[1],
            stall_ns: shares[2],
            retransmit_ns: shares[3],
            critical_rank: critical as u64,
        });
    }
    section.collective_ns = total_virt_ns.saturating_sub(phase_total);
    section.critical_path_ns = phase_total + section.collective_ns;
    section.straggler_score = if sum_max_work > 0.0 {
        sum_imbalance / sum_max_work
    } else {
        0.0
    };
    section
}

impl CriticalPathSection {
    /// The exactness invariant: overall buckets plus collective time equal
    /// the critical-path length, which equals total virtual time.
    pub fn attribution_sum_ns(&self) -> u64 {
        self.compute_ns + self.comm_ns + self.stall_ns + self.retransmit_ns + self.collective_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(index: u64, total_ns: u64, barrier_ns: f64, work: &[[f64; 6]]) -> PhaseCost {
        PhaseCost {
            index,
            total_ns,
            barrier_ns,
            rank_compute_ns: work.iter().map(|w| w[0]).collect(),
            rank_send_ns: work.iter().map(|w| w[1]).collect(),
            rank_recv_ns: work.iter().map(|w| w[2]).collect(),
            rank_transport_send_ns: work.iter().map(|w| w[3]).collect(),
            rank_transport_recv_ns: work.iter().map(|w| w[4]).collect(),
            rank_fault_ns: work.iter().map(|w| w[5]).collect(),
        }
    }

    #[test]
    fn largest_remainder_sums_exactly() {
        for total in [0u64, 1, 7, 1_000, 999_999_999] {
            for weights in [
                vec![1.0, 1.0, 1.0],
                vec![0.3, 0.3, 0.4],
                vec![0.0, 0.0, 5.0],
                vec![1e-9, 2e9, 3.7],
            ] {
                let shares = largest_remainder(total, &weights);
                assert_eq!(shares.iter().sum::<u64>(), total, "{total} {weights:?}");
            }
        }
        // Degenerate all-zero weights still conserve the total.
        assert_eq!(largest_remainder(42, &[0.0, 0.0]).iter().sum::<u64>(), 42);
    }

    #[test]
    fn attribution_is_exact_per_phase_and_overall() {
        let phases = vec![
            phase(
                0,
                10_003,
                500.0,
                &[
                    [7_000.0, 1_000.0, 200.0, 0.0, 0.0, 0.0],
                    [1_000.0, 100.0, 900.0, 300.0, 100.0, 55.5],
                ],
            ),
            phase(
                1,
                777,
                777.0,
                &[[0.0; 6], [0.0; 6]], // barrier-only phase
            ),
        ];
        let s = analyze(&phases, 12_000, 2);
        for p in &s.phase_attribution {
            assert_eq!(
                p.compute_ns + p.comm_ns + p.stall_ns + p.retransmit_ns,
                p.total_ns,
                "phase {} buckets must sum exactly",
                p.index
            );
        }
        assert_eq!(s.collective_ns, 12_000 - 10_003 - 777);
        assert_eq!(s.critical_path_ns, 12_000);
        assert_eq!(s.attribution_sum_ns(), 12_000);
        // Phase 0's critical rank is the compute-heavy rank 0.
        assert_eq!(s.phase_attribution[0].critical_rank, 0);
        assert_eq!(s.rank_critical_phases[0], 2); // tie in phase 1 → rank 0
                                                  // A barrier-only phase is all comm.
        assert_eq!(s.phase_attribution[1].comm_ns, 777);
        // Slack: rank 1 waited for rank 0 in phase 0.
        assert!(s.rank_slack_ns[1] > 0.0);
        assert_eq!(s.rank_slack_ns[0], 0.0);
        assert!(s.straggler_score > 0.0 && s.straggler_score < 1.0);
    }

    #[test]
    fn retransmit_traffic_is_attributed_separately() {
        let p = phase(0, 2_000, 0.0, &[[500.0, 250.0, 250.0, 600.0, 400.0, 0.0]]);
        let s = analyze(&[p], 2_000, 1);
        let a = &s.phase_attribution[0];
        assert!(a.retransmit_ns >= 900, "transport share dominates: {a:?}");
        assert_eq!(
            a.compute_ns + a.comm_ns + a.stall_ns + a.retransmit_ns,
            2_000
        );
    }

    #[test]
    fn fault_time_lands_in_stall() {
        let p = phase(0, 1_000, 0.0, &[[0.0, 0.0, 0.0, 0.0, 0.0, 1_000.0]]);
        let s = analyze(&[p], 1_000, 1);
        assert_eq!(s.stall_ns, 1_000);
        assert_eq!(s.compute_ns + s.comm_ns + s.retransmit_ns, 0);
    }

    #[test]
    fn empty_run_is_all_collective() {
        let s = analyze(&[], 5_000, 4);
        assert_eq!(s.collective_ns, 5_000);
        assert_eq!(s.critical_path_ns, 5_000);
        assert_eq!(s.attribution_sum_ns(), 5_000);
        assert_eq!(s.straggler_score, 0.0);
        assert_eq!(s.rank_slack_ns, vec![0.0; 4]);
    }

    #[test]
    fn perfectly_balanced_phases_score_zero() {
        let p = phase(
            0,
            1_000,
            0.0,
            &[
                [400.0, 50.0, 50.0, 0.0, 0.0, 0.0],
                [400.0, 50.0, 50.0, 0.0, 0.0, 0.0],
            ],
        );
        let s = analyze(&[p], 1_000, 2);
        assert_eq!(s.straggler_score, 0.0);
        assert_eq!(s.rank_slack_ns, vec![0.0, 0.0]);
    }

    #[test]
    fn analysis_is_deterministic() {
        let phases = vec![
            phase(
                0,
                9_999,
                123.0,
                &[
                    [3_000.0, 111.0, 22.0, 3.0, 4.0, 5.0],
                    [2_999.0, 112.0, 23.0, 4.0, 5.0, 6.0],
                ],
            );
            3
        ];
        let a = analyze(&phases, 40_000, 2);
        let b = analyze(&phases, 40_000, 2);
        assert_eq!(a, b);
    }
}
