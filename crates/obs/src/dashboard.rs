//! Self-contained single-file HTML dashboard for a [`RunReport`].
//!
//! [`dashboard_html`] renders one report into a standalone page: summary
//! stat tiles, the virtual-time phase timeline, the rank×rank traffic
//! heatmap, the NN-Descent convergence curve, continuous-telemetry series
//! charts, fault counters, and histogram summaries. Everything is inline
//! (CSS + SVG, no scripts, no external assets), so the file can be opened
//! from a CI artifact or attached to an issue without a web server.

use crate::critical_path::CriticalPathSection;
use crate::report::{
    FaultSection, MatrixSection, QueryForensicsSection, RunReport, ServingSection, VdbSection,
};
use std::fmt::Write as _;

/// Chart palette: one color per rank track, cycled.
const RANK_COLORS: &[&str] = &[
    "#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#b279a2", "#eeca3b", "#9d755d",
];

const COMPUTE_COLOR: &str = "#4c78a8";
const COMM_COLOR: &str = "#f58518";
const BARRIER_COLOR: &str = "#e45756";
const STALL_COLOR: &str = "#b279a2";
const RETRANS_COLOR: &str = "#e45756";
const COLLECTIVE_COLOR: &str = "#a7b4c2";

/// Render `report` as a complete standalone HTML document.
pub fn dashboard_html(report: &RunReport) -> String {
    let mut body = String::new();
    body.push_str(&header_html(report));
    body.push_str(&stat_tiles(report));
    body.push_str(&section(
        "timeline",
        "Phase timeline (virtual time)",
        &timeline_svg(report),
    ));
    if let Some(cp) = &report.critical_path {
        body.push_str(&section(
            "critical-path",
            "Critical path & straggler attribution",
            &critical_path_panel(cp),
        ));
    }
    if let Some(m) = &report.matrix {
        body.push_str(&section(
            "traffic-heatmap",
            "Rank × rank traffic heatmap",
            &heatmap_svg(m),
        ));
    }
    if !report.convergence.is_empty() {
        body.push_str(&section(
            "convergence",
            "Convergence (heap updates per iteration)",
            &convergence_svg(report),
        ));
    }
    if !report.series.is_empty() {
        body.push_str(&section(
            "telemetry",
            "Continuous telemetry (virtual-clock series)",
            &series_charts(report),
        ));
    }
    if let Some(s) = &report.serving {
        body.push_str(&section(
            "serving",
            "Online serving SLOs",
            &serving_panel(s),
        ));
    }
    if let Some(v) = &report.vdb {
        body.push_str(&section(
            "vdb",
            "Vector-DB namespaces & filtered search",
            &vdb_panel(v),
        ));
    }
    if let Some(q) = &report.query_forensics {
        body.push_str(&section(
            "query-forensics",
            "Per-query forensics (tail-sampled)",
            &forensics_panel(q),
        ));
    }
    if let Some(chart) = serving_sweep_chart(report) {
        body.push_str(&section(
            "throughput-latency",
            "Throughput vs p99 latency (offered-load sweep)",
            &chart,
        ));
    }
    if let Some(f) = &report.faults {
        body.push_str(&section(
            "faults",
            "Fault injection & reliable delivery",
            &fault_table(f),
        ));
    }
    if !report.histograms.is_empty() {
        body.push_str(&section("histograms", "Histograms", &hist_table(report)));
    }
    body.push_str(&section("parameters", "Parameters", &param_table(report)));

    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>{} run report</title>\n<style>{}</style>\n</head>\n<body>\n\
         <main>{}</main>\n</body>\n</html>\n",
        esc(&report.binary),
        STYLE,
        body
    )
}

const STYLE: &str = "\
body{font:14px/1.45 system-ui,sans-serif;margin:0;background:#f6f7f9;color:#1c2733}\
main{max-width:980px;margin:0 auto;padding:24px}\
h1{font-size:22px;margin:0 0 4px}h2{font-size:16px;margin:0 0 10px}\
.sub{color:#5b6b7b;margin:0 0 18px}\
section{background:#fff;border:1px solid #e3e8ee;border-radius:8px;padding:16px;margin:0 0 16px}\
.tiles{display:flex;flex-wrap:wrap;gap:10px;margin:0 0 16px}\
.tile{background:#fff;border:1px solid #e3e8ee;border-radius:8px;padding:10px 14px;min-width:110px}\
.tile b{display:block;font-size:18px}.tile span{color:#5b6b7b;font-size:12px}\
table{border-collapse:collapse;width:100%}\
th,td{text-align:right;padding:4px 10px;border-bottom:1px solid #eef1f4;font-variant-numeric:tabular-nums}\
th{color:#5b6b7b;font-weight:600}td:first-child,th:first-child{text-align:left}\
svg text{font:11px system-ui,sans-serif;fill:#3c4a59}\
.legend{color:#5b6b7b;font-size:12px;margin:8px 0 0}\
.swatch{display:inline-block;width:10px;height:10px;border-radius:2px;margin:0 4px 0 10px}\
.badge{display:inline-block;background:#c0392b;color:#fff;border-radius:10px;\
padding:2px 10px;font-size:12px;font-weight:600;margin-left:8px}";

fn section(id: &str, title: &str, inner: &str) -> String {
    format!(
        "<section id=\"{id}\">\n<h2>{}</h2>\n{inner}\n</section>\n",
        esc(title)
    )
}

fn header_html(r: &RunReport) -> String {
    let faulty = r
        .faults
        .as_ref()
        .map(|f| format!(" · fault profile {} (seed {})", esc(&f.profile), f.sim_seed))
        .unwrap_or_default();
    // Satellite: a lossy trace must be impossible to miss. The badge
    // names the overflowing rank(s), not just the total.
    let dropped = if r.dropped_spans > 0 {
        let per_rank: Vec<String> = r
            .dropped_spans_per_rank
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d > 0)
            .map(|(rank, &d)| format!("r{rank}:{}", group_u64(d)))
            .collect();
        let detail = if per_rank.is_empty() {
            String::new()
        } else {
            format!(" ({})", per_rank.join(" "))
        };
        format!(
            "<span class=\"badge\">{} dropped trace spans{}</span>",
            group_u64(r.dropped_spans),
            esc(&detail)
        )
    } else {
        String::new()
    };
    format!(
        "<h1>{} run report</h1>\n<p class=\"sub\">{} ranks{}{}</p>\n",
        esc(&r.binary),
        r.n_ranks,
        faulty,
        dropped
    )
}

fn stat_tiles(r: &RunReport) -> String {
    let mut tiles: Vec<(String, String)> = vec![
        ("virtual time".into(), format!("{:.4} s", r.sim_secs)),
        ("wall time".into(), format!("{:.3} s", r.wall_secs)),
        ("iterations".into(), r.iterations.to_string()),
        ("distance evals".into(), group_u64(r.distance_evals)),
        ("messages".into(), group_u64(r.total_count)),
        ("traffic".into(), human_bytes(r.total_bytes)),
    ];
    if let Some(recall) = r.recall {
        tiles.push(("recall".into(), format!("{:.4}", recall)));
    }
    for (k, v) in &r.extra {
        // Sweep points feed the throughput-latency chart, not the tiles.
        if k.starts_with("sweep_") {
            continue;
        }
        tiles.push((k.replace('_', " "), trim_float(*v)));
    }
    let mut out = String::from("<div class=\"tiles\">\n");
    for (label, value) in tiles {
        let _ = writeln!(
            out,
            "<div class=\"tile\"><b>{}</b><span>{}</span></div>",
            esc(&value),
            esc(&label)
        );
    }
    out.push_str("</div>\n");
    out
}

/// Stacked compute/comm/barrier bar per phase along the virtual timeline.
fn timeline_svg(r: &RunReport) -> String {
    let (w, h, pad_l, pad_b) = (920.0_f64, 120.0_f64, 10.0_f64, 24.0_f64);
    let total: f64 = r
        .phases
        .iter()
        .map(|p| p.compute_secs + p.comm_secs + p.barrier_secs)
        .sum();
    if r.phases.is_empty() || total <= 0.0 {
        return "<p class=\"legend\">no phase records</p>".into();
    }
    let band_h = h - pad_b - 20.0;
    let scale = (w - 2.0 * pad_l) / total;
    let mut out = format!("<svg viewBox=\"0 0 {w} {h}\" width=\"100%\" role=\"img\">\n");
    let mut x = pad_l;
    for p in &r.phases {
        for (dur, color, kind) in [
            (p.compute_secs, COMPUTE_COLOR, "compute"),
            (p.comm_secs, COMM_COLOR, "comm"),
            (p.barrier_secs, BARRIER_COLOR, "barrier"),
        ] {
            if dur <= 0.0 {
                continue;
            }
            let seg = dur * scale;
            let _ = writeln!(
                out,
                "<rect x=\"{:.2}\" y=\"20\" width=\"{:.2}\" height=\"{:.0}\" fill=\"{}\">\
                 <title>phase {}: {} {:.6} s · {} msgs · {}</title></rect>",
                x,
                seg.max(0.2),
                band_h,
                color,
                p.index,
                kind,
                dur,
                p.msgs,
                human_bytes(p.bytes)
            );
            x += seg;
        }
    }
    let _ = write!(
        out,
        "<text x=\"{pad_l}\" y=\"12\">0 s</text>\
         <text x=\"{:.1}\" y=\"12\" text-anchor=\"end\">{:.4} s of modeled virtual time, {} phases</text>\n</svg>\n",
        w - pad_l,
        total,
        r.phases.len()
    );
    out.push_str(&format!(
        "<p class=\"legend\"><span class=\"swatch\" style=\"background:{COMPUTE_COLOR}\"></span>compute\
         <span class=\"swatch\" style=\"background:{COMM_COLOR}\"></span>communication\
         <span class=\"swatch\" style=\"background:{BARRIER_COLOR}\"></span>barrier wait</p>"
    ));
    out
}

/// Summary tiles, the per-phase attribution lane, and per-rank slack bars
/// of the happens-before critical-path analysis.
fn critical_path_panel(cp: &CriticalPathSection) -> String {
    let total = cp.critical_path_ns.max(1) as f64;
    let pct = |ns: u64| format!("{:.1}%", ns as f64 / total * 100.0);
    let tiles: &[(&str, String)] = &[
        (
            "critical path",
            format!("{:.4} s", cp.critical_path_ns as f64 / 1e9),
        ),
        ("compute", pct(cp.compute_ns)),
        ("communication", pct(cp.comm_ns)),
        ("stall", pct(cp.stall_ns)),
        ("retransmit", pct(cp.retransmit_ns)),
        ("collectives", pct(cp.collective_ns)),
        ("straggler score", format!("{:.3}", cp.straggler_score)),
    ];
    let mut out = String::from("<div class=\"tiles\">\n");
    for (label, value) in tiles {
        let _ = writeln!(
            out,
            "<div class=\"tile\"><b>{}</b><span>{}</span></div>",
            esc(value),
            esc(label)
        );
    }
    out.push_str("</div>\n");
    out.push_str(&critical_lane_svg(cp));
    out.push_str(&slack_bars_svg(cp));
    out
}

/// The critical-path lane: one stacked bar per phase, segmented by the
/// exact attribution buckets, with the collective residue appended at the
/// end. Segment widths are proportional to virtual nanoseconds, so the
/// lane spans the whole critical path.
fn critical_lane_svg(cp: &CriticalPathSection) -> String {
    let (w, h, pad_l) = (920.0_f64, 96.0_f64, 10.0_f64);
    if cp.critical_path_ns == 0 {
        return "<p class=\"legend\">empty critical path</p>".into();
    }
    let band_h = h - 40.0;
    let scale = (w - 2.0 * pad_l) / cp.critical_path_ns as f64;
    let mut out = format!("<svg viewBox=\"0 0 {w} {h}\" width=\"100%\" role=\"img\">\n");
    let mut x = pad_l;
    for p in &cp.phase_attribution {
        for (ns, color, kind) in [
            (p.compute_ns, COMPUTE_COLOR, "compute"),
            (p.comm_ns, COMM_COLOR, "communication"),
            (p.retransmit_ns, RETRANS_COLOR, "retransmit"),
            (p.stall_ns, STALL_COLOR, "stall"),
        ] {
            if ns == 0 {
                continue;
            }
            let seg = ns as f64 * scale;
            let _ = writeln!(
                out,
                "<rect x=\"{:.2}\" y=\"20\" width=\"{:.2}\" height=\"{:.0}\" fill=\"{}\">\
                 <title>phase {}: {} {:.3} ms · critical rank {}</title></rect>",
                x,
                seg.max(0.2),
                band_h,
                color,
                p.index,
                kind,
                ns as f64 / 1e6,
                p.critical_rank
            );
            x += seg;
        }
    }
    if cp.collective_ns > 0 {
        let seg = cp.collective_ns as f64 * scale;
        let _ = writeln!(
            out,
            "<rect x=\"{:.2}\" y=\"20\" width=\"{:.2}\" height=\"{:.0}\" fill=\"{COLLECTIVE_COLOR}\">\
             <title>collectives: {:.3} ms</title></rect>",
            x,
            seg.max(0.2),
            band_h,
            cp.collective_ns as f64 / 1e6
        );
    }
    let _ = write!(
        out,
        "<text x=\"{pad_l}\" y=\"12\">0 s</text>\
         <text x=\"{:.1}\" y=\"12\" text-anchor=\"end\">{:.4} s critical path, {} phases</text>\n</svg>\n",
        w - pad_l,
        cp.critical_path_ns as f64 / 1e9,
        cp.phases
    );
    out.push_str(&format!(
        "<p class=\"legend\"><span class=\"swatch\" style=\"background:{COMPUTE_COLOR}\"></span>compute\
         <span class=\"swatch\" style=\"background:{COMM_COLOR}\"></span>communication\
         <span class=\"swatch\" style=\"background:{RETRANS_COLOR}\"></span>retransmit\
         <span class=\"swatch\" style=\"background:{STALL_COLOR}\"></span>stall\
         <span class=\"swatch\" style=\"background:{COLLECTIVE_COLOR}\"></span>collectives</p>"
    ));
    out
}

/// Horizontal per-rank slack bars: how long each rank sat at barriers
/// waiting for the per-phase critical rank, plus how often the rank was
/// itself the straggler.
fn slack_bars_svg(cp: &CriticalPathSection) -> String {
    let n = cp.rank_slack_ns.len();
    if n == 0 {
        return String::new();
    }
    let max_slack = cp.rank_slack_ns.iter().copied().fold(0.0_f64, f64::max);
    let (pad_l, row_h, bar_w) = (58.0_f64, 18.0_f64, 830.0_f64);
    let h = 16.0 + row_h * n as f64;
    let mut out = format!(
        "<h2 style=\"margin-top:14px\">Per-rank barrier slack</h2>\n\
         <svg viewBox=\"0 0 920 {h:.0}\" width=\"100%\" role=\"img\">\n"
    );
    for (rank, &slack) in cp.rank_slack_ns.iter().enumerate() {
        let y = 8.0 + row_h * rank as f64;
        let len = if max_slack > 0.0 {
            bar_w * slack / max_slack
        } else {
            0.0
        };
        let crit = cp.rank_critical_phases.get(rank).copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">rank {rank}</text>\
             <rect x=\"{pad_l}\" y=\"{:.1}\" width=\"{:.2}\" height=\"{:.0}\" fill=\"{}\">\
             <title>rank {rank}: {:.3} ms slack · critical in {crit} phase(s)</title></rect>",
            pad_l - 6.0,
            y + row_h - 6.0,
            y,
            len.max(0.5),
            row_h - 4.0,
            RANK_COLORS[rank % RANK_COLORS.len()],
            slack / 1e6
        );
    }
    out.push_str("</svg>\n<p class=\"legend\">bar length ∝ virtual time spent waiting at barriers for the phase's straggler</p>\n");
    out
}

/// Rank×rank heatmap of bytes (summed over tags), diagonal included.
fn heatmap_svg(m: &MatrixSection) -> String {
    let n = m.n_ranks as usize;
    if n == 0 {
        return "<p class=\"legend\">empty matrix</p>".into();
    }
    let counts = m.total_counts();
    let bytes = m.total_bytes();
    let max = bytes.iter().copied().max().unwrap_or(0).max(1);
    let cell = (420.0 / n as f64).min(64.0);
    let (pad_l, pad_t) = (58.0, 30.0);
    let w = pad_l + cell * n as f64 + 10.0;
    let h = pad_t + cell * n as f64 + 10.0;
    let mut out = format!("<svg viewBox=\"0 0 {w:.0} {h:.0}\" role=\"img\">\n");
    let _ = writeln!(
        out,
        "<text x=\"{:.1}\" y=\"12\" text-anchor=\"middle\">destination rank →</text>\
         <text x=\"12\" y=\"{:.1}\" transform=\"rotate(-90 12 {:.1})\" text-anchor=\"middle\">source rank →</text>",
        pad_l + cell * n as f64 / 2.0,
        pad_t + cell * n as f64 / 2.0,
        pad_t + cell * n as f64 / 2.0,
    );
    for src in 0..n {
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{src}</text>",
            pad_l - 6.0,
            pad_t + cell * (src as f64 + 0.5) + 4.0
        );
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{src}</text>",
            pad_l + cell * (src as f64 + 0.5),
            pad_t - 6.0
        );
        for dest in 0..n {
            let b = bytes[src * n + dest];
            let c = counts[src * n + dest];
            let _ = writeln!(
                out,
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                 fill=\"{}\" stroke=\"#fff\">\
                 <title>rank {src} → rank {dest}: {} msgs, {}</title></rect>",
                pad_l + cell * dest as f64,
                pad_t + cell * src as f64,
                cell,
                cell,
                heat_color(b as f64 / max as f64),
                group_u64(c),
                human_bytes(b)
            );
        }
    }
    out.push_str("</svg>\n");
    let _ = write!(
        out,
        "<p class=\"legend\">cell shade ∝ bytes sent (max {} on one edge); diagonal = rank-local delivery</p>",
        human_bytes(max)
    );
    out
}

fn convergence_svg(r: &RunReport) -> String {
    let pts: Vec<(f64, f64)> = r
        .convergence
        .iter()
        .map(|c| (c.iteration as f64, (1.0 + c.updates as f64).log10()))
        .collect();
    let max_updates = r.convergence.iter().map(|c| c.updates).max().unwrap_or(0);
    line_chart(
        &pts,
        "iteration",
        &format!(
            "log10(1 + updates), peak {} updates",
            group_u64(max_updates)
        ),
        RANK_COLORS[0],
    )
}

/// One small line chart per series name, rank tracks overlaid.
fn series_charts(r: &RunReport) -> String {
    let mut names: Vec<&str> = r.series.iter().map(|s| s.name.as_str()).collect();
    names.dedup(); // series are sorted by (name, rank)
    let mut out = String::new();
    for name in names {
        let tracks: Vec<_> = r.series.iter().filter(|s| s.name == name).collect();
        let mut polys = String::new();
        let mut legend = String::new();
        // Shared scales across the ranks of one series.
        let all: Vec<(f64, f64)> = tracks
            .iter()
            .flat_map(|s| s.points.iter().map(|p| (p.t_ns as f64 / 1e3, p.value)))
            .collect();
        let (sx, sy) = match scales(&all) {
            Some(s) => s,
            None => continue,
        };
        for s in &tracks {
            let color = RANK_COLORS[s.rank as usize % RANK_COLORS.len()];
            let pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .map(|p| (p.t_ns as f64 / 1e3, p.value))
                .collect();
            polys.push_str(&polyline(&pts, sx, sy, color));
            let _ = write!(
                legend,
                "<span class=\"swatch\" style=\"background:{color}\"></span>rank {}",
                s.rank
            );
        }
        let _ = write!(
            out,
            "<h2 style=\"margin-top:14px\">{}</h2>\n{}\n<p class=\"legend\">x: virtual time (µs){legend}</p>\n",
            esc(name),
            chart_frame(&polys, sx, sy)
        );
    }
    out
}

/// SLO tiles, the exact latency histogram, and the outcome breakdown of an
/// online serving run.
fn serving_panel(s: &ServingSection) -> String {
    let mut tiles: Vec<(&str, String)> = vec![
        ("offered", group_u64(s.offered)),
        ("answered", group_u64(s.answered)),
        ("cache hits", group_u64(s.cache_hits)),
        ("shed", group_u64(s.shed_deadline + s.shed_overload)),
        ("p50 latency", format!("{:.2} ms", s.p50_ns as f64 / 1e6)),
        ("p95 latency", format!("{:.2} ms", s.p95_ns as f64 / 1e6)),
        ("p99 latency", format!("{:.2} ms", s.p99_ns as f64 / 1e6)),
    ];
    // Client-perceived percentiles (schema v7): absent from pre-v7
    // documents, where the histogram is empty.
    if !s.client_hist.is_empty() {
        tiles.push((
            "client p50",
            format!("{:.2} ms", s.client_p50_ns as f64 / 1e6),
        ));
        tiles.push((
            "client p99",
            format!("{:.2} ms", s.client_p99_ns as f64 / 1e6),
        ));
    }
    let mut out = String::from("<div class=\"tiles\">\n");
    for (label, value) in &tiles {
        let _ = writeln!(
            out,
            "<div class=\"tile\"><b>{}</b><span>{}</span></div>",
            esc(value),
            esc(label)
        );
    }
    out.push_str("</div>\n");
    out.push_str(&latency_hist_svg(s));
    let rows: &[(&str, u64)] = &[
        ("offered (open-loop arrivals)", s.offered),
        ("admitted to queue", s.admitted),
        ("answered by search", s.answered),
        ("answered from cache", s.cache_hits),
        ("shed: deadline expired", s.shed_deadline),
        ("shed: queue overload", s.shed_overload),
        ("answered degraded", s.degraded),
        ("cache evictions", s.cache_evictions),
        ("max queue depth", s.max_queue_depth),
        ("serving slots", s.slots),
    ];
    let mut table = format!(
        "<table><tr><th>counter</th><th>value</th></tr>\
         <tr><td>serve seed</td><td>{}</td></tr>\
         <tr><td>slot duration</td><td>{:.3} ms</td></tr>\
         <tr><td>mean latency</td><td>{:.3} ms</td></tr>\
         <tr><td>result digest</td><td>{:016x}</td></tr>",
        s.serve_seed,
        s.slot_ns as f64 / 1e6,
        s.mean_latency_ns / 1e6,
        s.result_digest
    );
    for (name, v) in rows {
        let _ = write!(table, "<tr><td>{name}</td><td>{}</td></tr>", group_u64(*v));
    }
    table.push_str("</table>");
    out.push_str(&table);
    out.push_str(&tenant_slo_table(s));
    out
}

/// Per-tenant SLO table (schema v7); empty string when the workload
/// declared no tenant classes.
fn tenant_slo_table(s: &ServingSection) -> String {
    if s.tenants.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "<h2 style=\"margin-top:14px\">Tenant SLOs</h2>\n\
         <table><tr><th>class</th><th>share</th><th>offered</th>\
         <th>answered</th><th>cache hits</th><th>shed over</th>\
         <th>shed ddl</th><th>degraded</th><th>SLO</th>\
         <th>p50</th><th>p99</th></tr>",
    );
    for t in &s.tenants {
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}%</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{:.1}%</td>\
             <td>{:.2} ms</td><td>{:.2} ms</td></tr>",
            esc(&t.name),
            t.share_pct,
            group_u64(t.offered),
            group_u64(t.answered),
            group_u64(t.cache_hits),
            group_u64(t.shed_overload),
            group_u64(t.shed_deadline),
            group_u64(t.degraded),
            t.slo_attainment * 100.0,
            t.p50_ns as f64 / 1e6,
            t.p99_ns as f64 / 1e6,
        );
    }
    out.push_str("</table>\n<p class=\"legend\">classes in priority (declaration) order; SLO = answered ∪ cache hits over offered</p>");
    out
}

/// Bar chart of the exact answered-latency histogram (latency in slots).
fn latency_hist_svg(s: &ServingSection) -> String {
    if s.latency_hist.is_empty() {
        return "<p class=\"legend\">no answered queries</p>".into();
    }
    let max_count = s
        .latency_hist
        .iter()
        .map(|&(_, c)| c)
        .max()
        .unwrap_or(1)
        .max(1);
    let max_slots = s.latency_hist.iter().map(|&(b, _)| b).max().unwrap_or(1);
    let n_bars = (max_slots + 1) as f64;
    let bar_w = ((CHART_W - CHART_PAD - 10.0) / n_bars).min(40.0);
    let band_h = CHART_H - 32.0;
    let mut out =
        format!("<svg viewBox=\"0 0 {CHART_W} {CHART_H}\" width=\"100%\" role=\"img\">\n");
    for &(slots, count) in &s.latency_hist {
        let h = band_h * count as f64 / max_count as f64;
        let _ = writeln!(
            out,
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{}\">\
             <title>{} slot(s): {} queries ({:.3} ms)</title></rect>",
            CHART_PAD + slots as f64 * bar_w,
            10.0 + band_h - h,
            (bar_w - 1.0).max(0.5),
            h.max(0.5),
            RANK_COLORS[0],
            slots,
            group_u64(count),
            slots as f64 * s.slot_ns as f64 / 1e6,
        );
    }
    let _ = write!(
        out,
        "<text x=\"{CHART_PAD}\" y=\"{}\">0 slots</text>\
         <text x=\"{:.1}\" y=\"{}\" text-anchor=\"end\">{} slots</text>\n</svg>\n\
         <p class=\"legend\">answered-query latency histogram (exact, bucketed by serving slot; tallest bar {} queries)</p>",
        CHART_H - 8.0,
        CHART_W - 10.0,
        CHART_H - 8.0,
        max_slots,
        group_u64(max_count)
    );
    out
}

/// Per-namespace counters, mutation totals, and the filtered-query
/// selectivity decile chart of the vector-DB product layer (schema v8).
fn vdb_panel(v: &VdbSection) -> String {
    let tiles: &[(&str, String)] = &[
        ("namespaces", group_u64(v.namespaces.len() as u64)),
        ("filtered queries", group_u64(v.filtered_queries)),
        ("cache-suppressed ids", group_u64(v.cache_suppressed_ids)),
    ];
    let mut out = String::from("<div class=\"tiles\">\n");
    for (label, value) in tiles {
        let _ = writeln!(
            out,
            "<div class=\"tile\"><b>{}</b><span>{}</span></div>",
            esc(value),
            esc(label)
        );
    }
    out.push_str("</div>\n");
    out.push_str(
        "<table><tr><th>namespace</th><th>points</th><th>live</th>\
         <th>tombstones</th><th>dead</th><th>epoch</th><th>inserts</th>\
         <th>deletes</th><th>compactions</th></tr>",
    );
    for ns in &v.namespaces {
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            esc(&ns.name),
            group_u64(ns.points),
            group_u64(ns.live),
            group_u64(ns.tombstones),
            group_u64(ns.dead),
            group_u64(ns.epoch),
            group_u64(ns.inserts),
            group_u64(ns.deletes),
            group_u64(ns.compactions),
        );
    }
    out.push_str("</table>\n");
    if !v.selectivity_hist.is_empty() {
        let max_count = v
            .selectivity_hist
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(1)
            .max(1);
        let bar_w = (CHART_W - CHART_PAD - 10.0) / 10.0;
        let band_h = CHART_H - 32.0;
        let _ = writeln!(
            out,
            "<svg viewBox=\"0 0 {CHART_W} {CHART_H}\" width=\"100%\" role=\"img\">"
        );
        for &(decile, count) in &v.selectivity_hist {
            let h = band_h * count as f64 / max_count as f64;
            let _ = writeln!(
                out,
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{}\">\
                 <title>{}–{}% selective: {} queries</title></rect>",
                CHART_PAD + decile as f64 * bar_w,
                10.0 + band_h - h,
                (bar_w - 1.0).max(0.5),
                h.max(0.5),
                RANK_COLORS[2],
                decile * 10,
                (decile + 1) * 10,
                group_u64(count),
            );
        }
        let _ = write!(
            out,
            "<text x=\"{CHART_PAD}\" y=\"{}\">0%</text>\
             <text x=\"{:.1}\" y=\"{}\" text-anchor=\"end\">100%</text>\n</svg>\n\
             <p class=\"legend\">filtered-query selectivity (fraction of the collection \
             each query's mask admits, by decile)</p>",
            CHART_H - 8.0,
            CHART_W - 10.0,
            CHART_H - 8.0,
        );
    }
    out
}

/// Palette for the five waterfall stages (admission, batch wait,
/// dispatch, search, response), in pipeline order.
const STAGE_COLORS: &[&str] = &["#a7b4c2", "#b279a2", "#f58518", "#4c78a8", "#54a24b"];

/// Sampler tiles, the mean stage-latency waterfall, and the exemplar
/// table of the per-query forensics section.
fn forensics_panel(q: &QueryForensicsSection) -> String {
    let tiles: &[(&str, String)] = &[
        ("queries profiled", group_u64(q.considered)),
        ("retained", group_u64(q.retained)),
        ("slowest-per-window", group_u64(q.retained_slow)),
        ("exemplars", group_u64(q.retained_exemplar)),
        (
            "sampler",
            format!("top {} / {} slots", q.slow_n, q.window_slots),
        ),
        ("digest", format!("{:016x}", q.digest)),
    ];
    let mut out = String::from("<div class=\"tiles\">\n");
    for (label, value) in tiles {
        let _ = writeln!(
            out,
            "<div class=\"tile\"><b>{}</b><span>{}</span></div>",
            esc(value),
            esc(label)
        );
    }
    out.push_str("</div>\n");
    out.push_str(&waterfall_svg(q));
    out.push_str(&exemplar_table(q));
    out
}

/// One stacked horizontal bar: the mean per-stage latency over *all*
/// profiled queries (the histograms are exact, not sampled), so the bar
/// is the average query's waterfall and its total length is the mean
/// end-to-end latency in slots.
fn waterfall_svg(q: &QueryForensicsSection) -> String {
    // (stage, mean slots, max slots) from the exact histograms.
    let stats: Vec<(&str, f64, u64)> = q
        .stage_hists
        .iter()
        .map(|(name, buckets)| {
            let count: u64 = buckets.iter().map(|&(_, c)| c).sum();
            let sum: u64 = buckets.iter().map(|&(s, c)| s * c).sum();
            let max = buckets.iter().map(|&(s, _)| s).max().unwrap_or(0);
            let mean = if count > 0 {
                sum as f64 / count as f64
            } else {
                0.0
            };
            (name.as_str(), mean, max)
        })
        .collect();
    let total_mean: f64 = stats.iter().map(|&(_, m, _)| m).sum();
    if total_mean <= 0.0 {
        return "<p class=\"legend\">all stages zero (every query answered instantly)</p>".into();
    }
    let (w, h, pad_l) = (920.0_f64, 72.0_f64, 10.0_f64);
    let scale = (w - 2.0 * pad_l) / total_mean;
    let mut out = format!("<svg viewBox=\"0 0 {w} {h}\" width=\"100%\" role=\"img\">\n");
    let mut x = pad_l;
    let mut legend = String::new();
    for (i, &(name, mean, max)) in stats.iter().enumerate() {
        let color = STAGE_COLORS[i % STAGE_COLORS.len()];
        let _ = write!(
            legend,
            "<span class=\"swatch\" style=\"background:{color}\"></span>{}",
            esc(name)
        );
        if mean <= 0.0 {
            continue;
        }
        let seg = mean * scale;
        let _ = writeln!(
            out,
            "<rect x=\"{:.2}\" y=\"20\" width=\"{:.2}\" height=\"32\" fill=\"{}\">\
             <title>{}: mean {:.3} slots, max {} slots</title></rect>",
            x,
            seg.max(0.2),
            color,
            esc(name),
            mean,
            max
        );
        x += seg;
    }
    let _ = write!(
        out,
        "<text x=\"{pad_l}\" y=\"12\">0 slots</text>\
         <text x=\"{:.1}\" y=\"12\" text-anchor=\"end\">mean end-to-end {:.3} slots</text>\n</svg>\n",
        w - pad_l,
        total_mean
    );
    let _ = write!(
        out,
        "<p class=\"legend\">mean stage-latency waterfall over all {} profiled queries{legend}</p>",
        group_u64(q.considered)
    );
    out
}

/// Exemplar rows are capped so a pathological run cannot balloon the
/// dashboard; the legend reports any truncation.
const MAX_EXEMPLAR_ROWS: usize = 40;

fn exemplar_table(q: &QueryForensicsSection) -> String {
    if q.exemplars.is_empty() {
        return "<p class=\"legend\">no exemplars retained</p>".into();
    }
    let mut out = String::from(
        "<h2 style=\"margin-top:14px\">Sampled exemplars</h2>\n\
         <table><tr><th>idx</th><th>pool</th><th>tenant</th><th>verdict</th><th>why</th>\
         <th>lvl</th><th>arrived</th><th>wait</th><th>dispatch</th><th>search</th>\
         <th>latency</th><th>expansions</th><th>dist evals</th><th>miss</th></tr>",
    );
    for e in q.exemplars.iter().take(MAX_EXEMPLAR_ROWS) {
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td></tr>",
            e.idx,
            e.pool_id,
            e.tenant,
            esc(&e.verdict),
            esc(&e.why),
            e.degrade_level,
            e.arrived_slot,
            e.batch_wait_slots,
            e.dispatch_slots,
            e.search_slots,
            e.latency_slots,
            group_u64(e.expansions),
            group_u64(e.dist_evals),
            if e.deadline_miss { "✗" } else { "" },
        );
    }
    out.push_str("</table>");
    if q.exemplars.len() > MAX_EXEMPLAR_ROWS {
        let _ = write!(
            out,
            "<p class=\"legend\">showing {MAX_EXEMPLAR_ROWS} of {} exemplars (full set in the JSON report and slow-query log)</p>",
            q.exemplars.len()
        );
    }
    out
}

/// Throughput-vs-p99 curve from an offered-load sweep. The bench serve
/// driver records one `sweep_qps_<i>` / `sweep_p99_ms_<i>` pair per load
/// point in `extra`; render when at least two complete pairs exist.
fn serving_sweep_chart(r: &RunReport) -> Option<String> {
    let lookup =
        |key: &str| -> Option<f64> { r.extra.iter().find(|(k, _)| k == key).map(|&(_, v)| v) };
    let mut pts = Vec::new();
    for i in 0.. {
        match (
            lookup(&format!("sweep_qps_{i}")),
            lookup(&format!("sweep_p99_ms_{i}")),
        ) {
            (Some(qps), Some(p99)) => pts.push((qps, p99)),
            _ => break,
        }
    }
    if pts.len() < 2 {
        return None;
    }
    Some(line_chart(
        &pts,
        "offered load (queries/s)",
        "p99 latency of answered queries (ms)",
        RANK_COLORS[3],
    ))
}

fn fault_table(f: &FaultSection) -> String {
    let rows: &[(&str, u64)] = &[
        ("messages dropped", f.dropped),
        ("messages duplicated", f.duplicated),
        ("messages delayed", f.delayed),
        ("rank stalls", f.stalls),
        ("jittered flushes", f.jittered_flushes),
        ("retransmits", f.retransmits),
        ("dedup discards", f.dedup_discards),
        ("forced deliveries", f.forced_deliveries),
    ];
    let mut out = format!(
        "<table><tr><th>counter</th><th>value</th></tr>\
         <tr><td>profile</td><td>{} (sim seed {})</td></tr>",
        esc(&f.profile),
        f.sim_seed
    );
    for (name, v) in rows {
        let _ = write!(out, "<tr><td>{name}</td><td>{}</td></tr>", group_u64(*v));
    }
    out.push_str("</table>");
    out
}

fn hist_table(r: &RunReport) -> String {
    let mut out = String::from(
        "<table><tr><th>histogram</th><th>count</th><th>mean</th><th>min</th>\
         <th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>",
    );
    for h in &r.histograms {
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            esc(&h.name),
            group_u64(h.count),
            trim_float(h.mean),
            h.min,
            h.p50,
            h.p95,
            h.p99,
            h.max
        );
    }
    out.push_str("</table>");
    out
}

fn param_table(r: &RunReport) -> String {
    let mut out = String::from("<table><tr><th>parameter</th><th>value</th></tr>");
    for (k, v) in &r.params {
        let _ = write!(out, "<tr><td>{}</td><td>{}</td></tr>", esc(k), esc(v));
    }
    out.push_str("</table>");
    out
}

// ---- chart plumbing ------------------------------------------------------

const CHART_W: f64 = 920.0;
const CHART_H: f64 = 160.0;
const CHART_PAD: f64 = 40.0;

/// Linear data→pixel scale for one axis.
#[derive(Clone, Copy)]
struct Scale {
    lo: f64,
    hi: f64,
    px_lo: f64,
    px_hi: f64,
}

impl Scale {
    fn apply(&self, v: f64) -> f64 {
        let span = (self.hi - self.lo).max(1e-12);
        self.px_lo + (v - self.lo) / span * (self.px_hi - self.px_lo)
    }
}

fn scales(points: &[(f64, f64)]) -> Option<(Scale, Scale)> {
    let (mut x_lo, mut x_hi, mut y_lo, mut y_hi) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in points {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if points.is_empty() {
        return None;
    }
    y_lo = y_lo.min(0.0); // gauges read best anchored at zero
    Some((
        Scale {
            lo: x_lo,
            hi: x_hi,
            px_lo: CHART_PAD,
            px_hi: CHART_W - 10.0,
        },
        Scale {
            lo: y_lo,
            hi: y_hi,
            px_lo: CHART_H - 22.0,
            px_hi: 10.0,
        },
    ))
}

fn polyline(points: &[(f64, f64)], sx: Scale, sy: Scale, color: &str) -> String {
    if points.len() == 1 {
        let (x, y) = points[0];
        return format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.5\" fill=\"{color}\"/>\n",
            sx.apply(x),
            sy.apply(y)
        );
    }
    let coords: Vec<String> = points
        .iter()
        .map(|&(x, y)| format!("{:.1},{:.1}", sx.apply(x), sy.apply(y)))
        .collect();
    format!(
        "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>\n",
        coords.join(" ")
    )
}

fn chart_frame(inner: &str, sx: Scale, sy: Scale) -> String {
    format!(
        "<svg viewBox=\"0 0 {CHART_W} {CHART_H}\" width=\"100%\" role=\"img\">\n\
         <line x1=\"{p}\" y1=\"{y0:.1}\" x2=\"{xe}\" y2=\"{y0:.1}\" stroke=\"#c8d0d9\"/>\n\
         <line x1=\"{p}\" y1=\"10\" x2=\"{p}\" y2=\"{y0:.1}\" stroke=\"#c8d0d9\"/>\n\
         <text x=\"{p}\" y=\"{yl}\">{x_lo}</text>\n\
         <text x=\"{xe}\" y=\"{yl}\" text-anchor=\"end\">{x_hi}</text>\n\
         <text x=\"{p2}\" y=\"{y0m:.1}\">{y_lo}</text>\n\
         <text x=\"{p2}\" y=\"18\">{y_hi}</text>\n\
         {inner}</svg>\n",
        p = CHART_PAD,
        p2 = 2,
        xe = CHART_W - 10.0,
        y0 = CHART_H - 22.0,
        y0m = CHART_H - 26.0,
        yl = CHART_H - 8.0,
        x_lo = trim_float(sx.lo),
        x_hi = trim_float(sx.hi),
        y_lo = trim_float(sy.lo),
        y_hi = trim_float(sy.hi),
    )
}

fn line_chart(points: &[(f64, f64)], x_label: &str, y_label: &str, color: &str) -> String {
    let (sx, sy) = match scales(points) {
        Some(s) => s,
        None => return "<p class=\"legend\">no data</p>".into(),
    };
    format!(
        "{}\n<p class=\"legend\">x: {} · y: {}</p>",
        chart_frame(&polyline(points, sx, sy, color), sx, sy),
        esc(x_label),
        esc(y_label)
    )
}

/// White→deep-blue ramp for heatmap intensity in `[0, 1]`.
fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0).sqrt(); // sqrt lifts small cells into view
    let lerp = |a: f64, b: f64| (a + (b - a) * t) as u32;
    format!(
        "#{:02x}{:02x}{:02x}",
        lerp(247.0, 8.0),
        lerp(251.0, 48.0),
        lerp(255.0, 107.0)
    )
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn group_u64(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

fn human_bytes(b: u64) -> String {
    const UNITS: &[&str] = &["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        let s = group_u64(v.abs() as u64);
        if v < 0.0 {
            format!("-{s}")
        } else {
            s
        }
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ConvergencePoint, MatrixTagReport, PhaseReport};
    use crate::timeseries::{SeriesPoint, SeriesSnapshot};

    fn sample() -> RunReport {
        let mut r = RunReport::new("dnnd-construct");
        r.param("input", "preset:deep1b <n=600>");
        r.n_ranks = 2;
        r.iterations = 3;
        r.sim_secs = 0.5;
        r.phases = vec![
            PhaseReport {
                index: 0,
                compute_secs: 0.1,
                comm_secs: 0.05,
                barrier_secs: 0.01,
                msgs: 10,
                bytes: 640,
            },
            PhaseReport {
                index: 1,
                compute_secs: 0.2,
                comm_secs: 0.1,
                barrier_secs: 0.04,
                msgs: 20,
                bytes: 1_280,
            },
        ];
        r.convergence = vec![
            ConvergencePoint {
                iteration: 0,
                updates: 500,
            },
            ConvergencePoint {
                iteration: 1,
                updates: 20,
            },
        ];
        r.series = vec![SeriesSnapshot {
            name: "send_buf_bytes".into(),
            rank: 0,
            points: vec![
                SeriesPoint {
                    t_ns: 10_000,
                    value: 64.0,
                },
                SeriesPoint {
                    t_ns: 20_000,
                    value: 32.0,
                },
            ],
        }];
        r.matrix = Some(MatrixSection {
            n_ranks: 2,
            tags: vec![MatrixTagReport {
                tag: 1,
                name: "Type 1".into(),
                counts: vec![1, 2, 3, 4],
                bytes: vec![10, 20, 30, 40],
            }],
        });
        r
    }

    #[test]
    fn dashboard_is_self_contained() {
        let html = dashboard_html(&sample());
        assert!(html.starts_with("<!DOCTYPE html>"));
        // No external fetches of any kind.
        for needle in ["http://", "https://", "<script", "src=", "@import", "url("] {
            assert!(
                !html.contains(needle),
                "found external reference {needle:?}"
            );
        }
        // The three required views are present.
        for id in [
            "id=\"timeline\"",
            "id=\"traffic-heatmap\"",
            "id=\"convergence\"",
        ] {
            assert!(html.contains(id), "missing section {id}");
        }
        assert!(html.contains("id=\"telemetry\""));
        assert!(html.contains("send_buf_bytes"));
    }

    #[test]
    fn html_escapes_report_strings() {
        let html = dashboard_html(&sample());
        assert!(html.contains("preset:deep1b &lt;n=600&gt;"));
        assert!(!html.contains("<n=600>"));
    }

    #[test]
    fn heatmap_has_a_cell_per_rank_pair() {
        let html = dashboard_html(&sample());
        assert_eq!(html.matches("rank 1 → rank 0").count(), 1);
        assert_eq!(html.matches("→ rank").count(), 4);
    }

    #[test]
    fn missing_sections_are_omitted() {
        let mut r = sample();
        r.matrix = None;
        r.series.clear();
        r.convergence.clear();
        let html = dashboard_html(&r);
        assert!(!html.contains("id=\"traffic-heatmap\""));
        assert!(!html.contains("id=\"telemetry\""));
        assert!(!html.contains("id=\"convergence\""));
        assert!(html.contains("id=\"timeline\""));
    }

    #[test]
    fn vdb_panel_renders_and_is_omitted_without_section() {
        use crate::report::{VdbNamespaceSection, VdbSection};
        let mut r = sample();
        assert!(!dashboard_html(&r).contains("id=\"vdb\""));
        r.vdb = Some(VdbSection {
            namespaces: vec![VdbNamespaceSection {
                name: "prod".into(),
                points: 1_000,
                live: 930,
                tombstones: 20,
                dead: 50,
                epoch: 3,
                inserts: 12,
                deletes: 70,
                compactions: 2,
            }],
            filtered_queries: 44,
            cache_suppressed_ids: 5,
            selectivity_hist: vec![(1, 10), (4, 30)],
        });
        let html = dashboard_html(&r);
        assert!(html.contains("id=\"vdb\""));
        assert!(html.contains("prod"));
        assert!(html.contains("compactions"));
        assert!(html.contains("40–50% selective: 30 queries"));
        for needle in ["http://", "https://", "<script", "src=", "@import", "url("] {
            assert!(!html.contains(needle), "found {needle:?}");
        }
    }

    #[test]
    fn serving_panel_renders_and_is_omitted_without_section() {
        let mut r = sample();
        assert!(!dashboard_html(&r).contains("id=\"serving\""));
        r.serving = Some(ServingSection {
            serve_seed: 9,
            slot_ns: 250_000,
            slots: 16,
            offered: 100,
            admitted: 90,
            answered: 80,
            cache_hits: 10,
            shed_deadline: 5,
            shed_overload: 5,
            p99_ns: 1_000_000,
            latency_hist: vec![(1, 60), (2, 15), (4, 5)],
            result_digest: 0xABCD,
            ..Default::default()
        });
        let html = dashboard_html(&r);
        assert!(html.contains("id=\"serving\""));
        assert!(html.contains("shed: deadline expired"));
        assert!(html.contains("000000000000abcd")); // digest, zero-padded hex
        assert!(html.contains("4 slot(s): 5 queries"));
        // Tenant-less, pre-v7-shaped section: no tenant table, no
        // client-latency tiles.
        assert!(!html.contains("Tenant SLOs"));
        assert!(!html.contains("client p99"));
        // Still self-contained with the new panel.
        for needle in ["http://", "https://", "<script", "src=", "@import", "url("] {
            assert!(!html.contains(needle), "found {needle:?}");
        }
    }

    #[test]
    fn tenant_slo_table_and_client_tiles_render_when_present() {
        use crate::report::TenantSloSection;
        let mut r = sample();
        r.serving = Some(ServingSection {
            serve_seed: 9,
            slot_ns: 250_000,
            offered: 100,
            answered: 80,
            latency_hist: vec![(1, 60), (2, 20)],
            client_p50_ns: 500_000,
            client_p99_ns: 4_000_000,
            client_hist: vec![(1, 55), (2, 20), (16, 5)],
            tenants: vec![
                TenantSloSection {
                    name: "gold".into(),
                    share_pct: 50,
                    offered: 50,
                    answered: 49,
                    slo_attainment: 0.98,
                    p99_ns: 1_000_000,
                    ..Default::default()
                },
                TenantSloSection {
                    name: "free<x>".into(),
                    share_pct: 50,
                    offered: 50,
                    answered: 31,
                    slo_attainment: 0.62,
                    p99_ns: 3_000_000,
                    ..Default::default()
                },
            ],
            ..Default::default()
        });
        let html = dashboard_html(&r);
        assert!(html.contains("Tenant SLOs"));
        assert!(html.contains("client p50"));
        assert!(html.contains("client p99"));
        assert!(html.contains("<td>gold</td>"));
        assert!(html.contains("98.0%"));
        assert!(html.contains("62.0%"));
        // Tenant names are HTML-escaped like every other report string.
        assert!(html.contains("free&lt;x&gt;"));
        assert!(!html.contains("free<x>"));
        // Still self-contained.
        for needle in ["http://", "https://", "<script", "src=", "@import", "url("] {
            assert!(!html.contains(needle), "found {needle:?}");
        }
    }

    #[test]
    fn critical_path_panel_renders_and_is_omitted_without_section() {
        use crate::critical_path::PhaseAttribution;
        let mut r = sample();
        assert!(!dashboard_html(&r).contains("id=\"critical-path\""));
        r.critical_path = Some(CriticalPathSection {
            n_ranks: 2,
            phases: 1,
            critical_path_ns: 1_000_000_000,
            collective_ns: 400_000_000,
            compute_ns: 500_000_000,
            comm_ns: 80_000_000,
            stall_ns: 15_000_000,
            retransmit_ns: 5_000_000,
            rank_slack_ns: vec![0.0, 30_000_000.0],
            rank_critical_phases: vec![1, 0],
            straggler_score: 0.25,
            phase_attribution: vec![PhaseAttribution {
                index: 0,
                total_ns: 600_000_000,
                compute_ns: 500_000_000,
                comm_ns: 80_000_000,
                stall_ns: 15_000_000,
                retransmit_ns: 5_000_000,
                critical_rank: 0,
            }],
        });
        let html = dashboard_html(&r);
        assert!(html.contains("id=\"critical-path\""));
        // Lane segments carry attribution titles; slack bars are present.
        assert!(html.contains("phase 0: retransmit 5.000 ms · critical rank 0"));
        assert!(html.contains("collectives: 400.000 ms"));
        assert!(html.contains("rank 1: 30.000 ms slack · critical in 0 phase(s)"));
        assert!(html.contains("straggler score"));
        // Still self-contained with the new panel.
        for needle in ["http://", "https://", "<script", "src=", "@import", "url("] {
            assert!(!html.contains(needle), "found {needle:?}");
        }
    }

    #[test]
    fn forensics_panel_renders_and_is_omitted_without_section() {
        use crate::report::QueryExemplar;
        let mut r = sample();
        assert!(!dashboard_html(&r).contains("id=\"query-forensics\""));
        r.query_forensics = Some(QueryForensicsSection {
            window_slots: 8,
            slow_n: 4,
            considered: 100,
            retained: 2,
            retained_slow: 1,
            retained_exemplar: 1,
            stage_hists: vec![
                ("admission".into(), vec![(0, 100)]),
                ("batch_wait".into(), vec![(0, 60), (2, 40)]),
                ("dispatch".into(), vec![(0, 95), (4, 5)]),
                ("search".into(), vec![(0, 10), (1, 90)]),
                ("response".into(), vec![(0, 100)]),
            ],
            exemplars: vec![QueryExemplar {
                idx: 17,
                pool_id: 41,
                verdict: "answered".into(),
                why: "slow|deadline_miss".into(),
                degrade_level: 1,
                cache_key_hash: 0xFEED,
                arrived_slot: 10,
                done_slot: 17,
                batch_wait_slots: 2,
                dispatch_slots: 4,
                search_slots: 1,
                latency_slots: 7,
                expansions: 12,
                dist_evals: 1_340,
                rounds: 13,
                deadline_miss: true,
                ..Default::default()
            }],
            digest: 0xABCD,
        });
        let html = dashboard_html(&r);
        assert!(html.contains("id=\"query-forensics\""));
        // Waterfall segments carry per-stage stats from the exact hists.
        assert!(html.contains("batch_wait: mean 0.800 slots, max 2 slots"));
        assert!(html.contains("search: mean 0.900 slots, max 1 slots"));
        // Exemplar row with its why-mask and counters.
        assert!(html.contains("slow|deadline_miss"));
        assert!(html.contains("1,340"));
        assert!(html.contains("000000000000abcd"));
        // Still self-contained with the new panel.
        for needle in ["http://", "https://", "<script", "src=", "@import", "url("] {
            assert!(!html.contains(needle), "found {needle:?}");
        }
    }

    #[test]
    fn dropped_spans_badge_names_the_overflowing_ranks() {
        let mut r = sample();
        assert!(!dashboard_html(&r).contains("class=\"badge\""));
        r.set_dropped_spans_per_rank(vec![0, 1_200, 0, 7]);
        let html = dashboard_html(&r);
        assert!(html.contains("class=\"badge\""));
        assert!(html.contains("1,207 dropped trace spans"));
        assert!(html.contains("r1:1,200 r3:7"));
        // Total-only reports (older schema) still badge without detail.
        let mut r2 = sample();
        r2.set_dropped_spans(5);
        let html2 = dashboard_html(&r2);
        assert!(html2.contains(">5 dropped trace spans</span>"));
    }

    #[test]
    fn sweep_chart_needs_two_complete_pairs() {
        let mut r = sample();
        r.metric("sweep_qps_0", 100.0);
        r.metric("sweep_p99_ms_0", 1.5);
        assert!(!dashboard_html(&r).contains("id=\"throughput-latency\""));
        r.metric("sweep_qps_1", 200.0);
        r.metric("sweep_p99_ms_1", 4.0);
        let html = dashboard_html(&r);
        assert!(html.contains("id=\"throughput-latency\""));
        assert!(html.contains("p99 latency of answered queries (ms)"));
        // Sweep keys feed the chart, not the summary tiles.
        assert!(!html.contains("sweep qps 0"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(group_u64(1_234_567), "1,234,567");
        assert_eq!(group_u64(17), "17");
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2_048), "2.00 KiB");
        assert_eq!(heat_color(0.0), "#f7fbff");
        assert_eq!(heat_color(1.0), "#08306b");
    }
}
