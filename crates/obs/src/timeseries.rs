//! Continuous telemetry: per-rank gauge time series sampled on the
//! virtual clock.
//!
//! A [`TimeSeriesSet`] holds named series, one track per rank, where each
//! point is `(virtual time ns, value)`. Sampling is *paced* by virtual
//! time: callers ask [`TimeSeriesSet::should_sample`] at natural probe
//! points (barrier entry in `ygm`), and the set admits at most one sample
//! per rank per fixed virtual-time interval. Because the virtual clock is
//! a deterministic function of the run (it only advances at barriers and
//! collectives, by modeled cost), the sampled series are bit-identical
//! across reruns with the same seed — they carry no wall-clock input.
//!
//! Event-driven gauges (e.g. per-iteration heap updates) bypass pacing and
//! call [`TimeSeriesSet::record`] directly; they are deterministic because
//! their trigger points are.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default sampling interval: 10 µs of virtual time. Barrier phases in the
/// simulated cluster cost tens of microseconds each, so even small runs
/// produce a usable number of samples without flooding large ones.
pub const DEFAULT_SAMPLE_INTERVAL_NS: u64 = 10_000;

/// One sampled gauge value at a virtual-clock timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Virtual time of the sample, nanoseconds.
    pub t_ns: u64,
    pub value: f64,
}

/// One named series on one rank's track, in sample order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeriesSnapshot {
    pub name: String,
    pub rank: u64,
    pub points: Vec<SeriesPoint>,
}

/// Named per-rank gauge series with virtual-time pacing.
///
/// Shared across rank threads behind the owning `Tracer`'s `Arc`. The
/// per-rank pacing state is atomic; point storage takes a mutex, which is
/// fine because sampling is rare by construction (once per interval).
pub struct TimeSeriesSet {
    n_ranks: usize,
    interval_ns: u64,
    /// Next virtual timestamp at which each rank's paced sample is due.
    next_due: Box<[AtomicU64]>,
    /// name → per-rank point vectors. `BTreeMap` so snapshot order is
    /// deterministic regardless of which rank registered a name first.
    series: Mutex<BTreeMap<String, Vec<Vec<SeriesPoint>>>>,
}

impl TimeSeriesSet {
    pub fn new(n_ranks: usize, interval_ns: u64) -> Self {
        assert!(interval_ns > 0, "sampling interval must be positive");
        TimeSeriesSet {
            n_ranks,
            interval_ns,
            next_due: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
            series: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Whether `rank`'s paced sample is due at virtual time `now_ns`.
    /// On `true`, advances the due point to the next interval boundary
    /// after `now_ns`, so each interval admits at most one sample.
    ///
    /// Pacing is per-rank and must be driven from the owning rank's
    /// thread (as with the tracer's ring buffers).
    pub fn should_sample(&self, rank: usize, now_ns: u64) -> bool {
        let due = &self.next_due[rank];
        if now_ns < due.load(Ordering::Relaxed) {
            return false;
        }
        // Next boundary strictly after `now_ns`, aligned to the interval
        // grid so runs of different lengths sample at the same timestamps.
        let next = (now_ns / self.interval_ns + 1) * self.interval_ns;
        due.store(next, Ordering::Relaxed);
        true
    }

    /// Append one point to `rank`'s track of the series `name`.
    pub fn record(&self, rank: usize, name: &str, t_ns: u64, value: f64) {
        let mut series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let tracks = series
            .entry(name.to_string())
            .or_insert_with(|| vec![Vec::new(); self.n_ranks]);
        tracks[rank].push(SeriesPoint { t_ns, value });
    }

    /// All non-empty tracks, sorted by series name then rank.
    pub fn snapshot(&self) -> Vec<SeriesSnapshot> {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for (name, tracks) in series.iter() {
            for (rank, points) in tracks.iter().enumerate() {
                if points.is_empty() {
                    continue;
                }
                out.push(SeriesSnapshot {
                    name: name.clone(),
                    rank: rank as u64,
                    points: points.clone(),
                });
            }
        }
        out
    }

    /// Total points across all tracks.
    pub fn total_points(&self) -> usize {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        series
            .values()
            .map(|tracks| tracks.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_admits_one_sample_per_interval() {
        let ts = TimeSeriesSet::new(1, 100);
        assert!(ts.should_sample(0, 0));
        assert!(!ts.should_sample(0, 50)); // same interval
        assert!(!ts.should_sample(0, 99));
        assert!(ts.should_sample(0, 100)); // next interval
        assert!(ts.should_sample(0, 350)); // skipped intervals are fine
        assert!(!ts.should_sample(0, 399));
        assert!(ts.should_sample(0, 400));
    }

    #[test]
    fn pacing_is_per_rank() {
        let ts = TimeSeriesSet::new(2, 100);
        assert!(ts.should_sample(0, 10));
        assert!(ts.should_sample(1, 10)); // rank 1 unaffected by rank 0
        assert!(!ts.should_sample(1, 20));
    }

    #[test]
    fn snapshot_is_name_then_rank_ordered() {
        let ts = TimeSeriesSet::new(2, 100);
        ts.record(1, "zeta", 10, 1.0);
        ts.record(0, "alpha", 20, 2.0);
        ts.record(1, "alpha", 20, 3.0);
        let snap = ts.snapshot();
        let keys: Vec<(&str, u64)> = snap.iter().map(|s| (s.name.as_str(), s.rank)).collect();
        assert_eq!(keys, vec![("alpha", 0), ("alpha", 1), ("zeta", 1)]);
        assert_eq!(
            snap[0].points,
            vec![SeriesPoint {
                t_ns: 20,
                value: 2.0
            }]
        );
    }

    #[test]
    fn empty_tracks_are_omitted() {
        let ts = TimeSeriesSet::new(4, 100);
        ts.record(2, "only", 5, 9.0);
        let snap = ts.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].rank, 2);
        assert_eq!(ts.total_points(), 1);
    }

    #[test]
    fn points_keep_insertion_order() {
        let ts = TimeSeriesSet::new(1, 10);
        for t in [0u64, 10, 20, 30] {
            ts.record(0, "g", t, t as f64);
        }
        let snap = ts.snapshot();
        let ts_list: Vec<u64> = snap[0].points.iter().map(|p| p.t_ns).collect();
        assert_eq!(ts_list, vec![0, 10, 20, 30]);
    }
}
