//! Observability for the DNND simulation: span tracing, histogram metrics,
//! Chrome-trace export, and unified JSON run reports.
//!
//! The crate is dependency-free and knows nothing about `ygm` or the engine;
//! callers push events keyed to *both* clocks (wall time measured here,
//! virtual simulation time passed in) and feed already-aggregated runtime
//! statistics into [`report::RunReport`].
//!
//! Hot-path design: each simulated rank runs on its own OS thread and owns a
//! single-producer lock-free ring buffer ([`ring::RankBuffer`]); recording a
//! span boundary is one slot write plus one atomic store. Histograms are
//! arrays of relaxed atomic counters. Everything is aggregated only at
//! export time, after `World::run` has joined the rank threads.
//!
//! Zero-cost when disabled: instrumented code holds an
//! `Option<Arc<Tracer>>` (or `Option<&Tracer>`) and skips all of this with
//! one branch when tracing is off.

pub mod chrome;
pub mod critical_path;
pub mod dashboard;
pub mod hist;
pub mod json;
pub mod report;
pub mod ring;
pub mod timeseries;
pub mod tracer;

pub use critical_path::{CriticalPathSection, PhaseAttribution, PhaseCost};
pub use hist::{Histogram, HistogramSnapshot};
pub use json::JsonValue;
pub use report::{
    ConvergencePoint, FaultSection, MatrixSection, MatrixTagReport, PhaseReport, QueryExemplar,
    QueryForensicsSection, RnnRoundReport, RnnSection, RunReport, ServingSection, TagReport,
    TenantSloSection, VdbNamespaceSection, VdbSection,
};
pub use ring::{EventKind, TraceEvent};
pub use timeseries::{SeriesPoint, SeriesSnapshot, TimeSeriesSet};
pub use tracer::Tracer;
