//! The [`Tracer`]: per-rank span/event recording plus named histograms.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::ring::{EventKind, RankBuffer, TraceEvent};
use crate::timeseries::{TimeSeriesSet, DEFAULT_SAMPLE_INTERVAL_NS};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-rank event capacity (events beyond this overwrite the
/// oldest; the drop count is reported in exports).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Collects spans, instants, and histograms for one simulated run.
///
/// Shared across rank threads behind an `Arc`; recording into a rank's ring
/// must happen only from that rank's thread (the `ygm::World` wiring
/// guarantees this), while histograms may be recorded from anywhere.
pub struct Tracer {
    rings: Box<[RankBuffer]>,
    epoch: Instant,
    /// Name → histogram registry. Locked only on first lookup per name per
    /// call site; `Histogram::record` itself is lock-free.
    hists: Mutex<Vec<(String, Arc<Histogram>)>>,
    /// Per-rank gauge series sampled on the virtual clock.
    series: TimeSeriesSet,
    /// Whether causal flow events are recorded (`--trace-flows=off`
    /// clears it; spans and gauges are unaffected).
    flows: AtomicBool,
    /// Tag id → display name, used to label flow arrows in exports.
    tag_names: Mutex<Vec<(u64, String)>>,
}

impl Tracer {
    pub fn new(n_ranks: usize) -> Self {
        Self::with_capacity(n_ranks, DEFAULT_RING_CAPACITY)
    }

    pub fn with_capacity(n_ranks: usize, capacity_per_rank: usize) -> Self {
        Self::with_config(n_ranks, capacity_per_rank, DEFAULT_SAMPLE_INTERVAL_NS)
    }

    /// Full-control constructor: ring capacity and the virtual-time gauge
    /// sampling interval.
    pub fn with_config(n_ranks: usize, capacity_per_rank: usize, sample_interval_ns: u64) -> Self {
        let rings = (0..n_ranks)
            .map(|_| RankBuffer::new(capacity_per_rank))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Tracer {
            rings,
            epoch: Instant::now(),
            hists: Mutex::new(Vec::new()),
            series: TimeSeriesSet::new(n_ranks, sample_interval_ns),
            flows: AtomicBool::new(true),
            tag_names: Mutex::new(Vec::new()),
        }
    }

    /// Enable or disable causal flow-event recording (default on). The
    /// CLIs map `--trace-flows=off` here before the world starts.
    pub fn set_flows_enabled(&self, on: bool) {
        self.flows.store(on, Ordering::Relaxed);
    }

    /// Whether flow events are currently recorded.
    #[inline]
    pub fn flows_enabled(&self) -> bool {
        self.flows.load(Ordering::Relaxed)
    }

    /// Attach a display name to a message tag; flow arrows for the tag are
    /// exported under this name. Last write wins.
    pub fn name_tag(&self, tag: u64, name: &str) {
        let mut names = self.tag_names.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, n)) = names.iter_mut().find(|(t, _)| *t == tag) {
            *n = name.to_string();
        } else {
            names.push((tag, name.to_string()));
        }
    }

    /// The display name registered for `tag`, if any.
    pub fn tag_name(&self, tag: u64) -> Option<String> {
        let names = self.tag_names.lock().unwrap_or_else(|e| e.into_inner());
        names
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, n)| n.clone())
    }

    /// The continuous-telemetry series set (gauges sampled on the virtual
    /// clock by the runtime and engine).
    pub fn series(&self) -> &TimeSeriesSet {
        &self.series
    }

    pub fn n_ranks(&self) -> usize {
        self.rings.len()
    }

    /// Wall nanoseconds since this tracer was created.
    #[inline]
    pub fn wall_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a raw event on `rank`'s track. `virt_ns` is the simulation
    /// clock sampled by the caller.
    #[inline]
    pub fn event(&self, rank: usize, kind: EventKind, name: &'static str, virt_ns: u64, arg: u64) {
        self.event2(rank, kind, name, virt_ns, arg, 0);
    }

    /// Record a raw event carrying both numeric payload slots.
    #[inline]
    pub fn event2(
        &self,
        rank: usize,
        kind: EventKind,
        name: &'static str,
        virt_ns: u64,
        arg: u64,
        arg2: u64,
    ) {
        self.rings[rank].push(TraceEvent {
            kind,
            name,
            wall_ns: self.wall_ns(),
            virt_ns,
            arg,
            arg2,
        });
    }

    /// Open a span on `rank`'s track.
    #[inline]
    pub fn begin(&self, rank: usize, name: &'static str, virt_ns: u64) {
        self.event(rank, EventKind::Begin, name, virt_ns, 0);
    }

    /// Open a span carrying a numeric payload (e.g. an iteration index).
    #[inline]
    pub fn begin_arg(&self, rank: usize, name: &'static str, virt_ns: u64, arg: u64) {
        self.event(rank, EventKind::Begin, name, virt_ns, arg);
    }

    /// Close the most recent unmatched span with `name` on `rank`'s track.
    #[inline]
    pub fn end(&self, rank: usize, name: &'static str, virt_ns: u64) {
        self.event(rank, EventKind::End, name, virt_ns, 0);
    }

    /// Record a zero-duration point event.
    #[inline]
    pub fn instant(&self, rank: usize, name: &'static str, virt_ns: u64, arg: u64) {
        self.event(rank, EventKind::Instant, name, virt_ns, arg);
    }

    /// Record the origin half of a causal flow arrow (`ph:"s"`). Callers
    /// should gate on [`Self::flows_enabled`]; recording is unconditional
    /// here so tests can drive the ring directly.
    #[inline]
    pub fn flow_send(&self, rank: usize, name: &'static str, virt_ns: u64, id: u64, tag: u64) {
        self.event2(rank, EventKind::FlowSend, name, virt_ns, id, tag);
    }

    /// Record the terminating half of a causal flow arrow (`ph:"f"`).
    #[inline]
    pub fn flow_recv(&self, rank: usize, name: &'static str, virt_ns: u64, id: u64, tag: u64) {
        self.event2(rank, EventKind::FlowRecv, name, virt_ns, id, tag);
    }

    /// Open an async (nestable) span (`ph:"b"`). `id` pairs it with the
    /// matching [`Self::async_end`]; overlapping spans on one track are
    /// fine — Chrome matches on `(category, id, name)`, not nesting.
    #[inline]
    pub fn async_begin(&self, rank: usize, name: &'static str, virt_ns: u64, id: u64) {
        self.event2(rank, EventKind::AsyncBegin, name, virt_ns, id, 0);
    }

    /// Close the async span opened with the same `(name, id)` (`ph:"e"`).
    #[inline]
    pub fn async_end(&self, rank: usize, name: &'static str, virt_ns: u64, id: u64) {
        self.event2(rank, EventKind::AsyncEnd, name, virt_ns, id, 0);
    }

    /// Look up (or create) the histogram named `name`.
    pub fn hist(&self, name: &str) -> Arc<Histogram> {
        let mut hists = self.hists.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, h)) = hists.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        hists.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Convenience: one sample into a named histogram.
    pub fn record_hist(&self, name: &str, value: u64) {
        self.hist(name).record(value);
    }

    /// Snapshots of every registered histogram, in registration order.
    pub fn hist_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        let hists = self.hists.lock().unwrap_or_else(|e| e.into_inner());
        hists
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect()
    }

    /// Surviving events for one rank, oldest first. Call after rank
    /// threads have finished.
    pub fn events(&self, rank: usize) -> Vec<TraceEvent> {
        self.rings[rank].drain_ordered()
    }

    /// Total events lost to ring wrap-around, across ranks.
    pub fn dropped_events(&self) -> usize {
        self.rings.iter().map(|r| r.dropped()).sum()
    }

    /// Events lost to ring wrap-around on each rank's buffer (index =
    /// rank). The dashboard surfaces nonzero entries as a red badge so an
    /// overflowing rank is visible, not just a grand total.
    pub fn dropped_events_per_rank(&self) -> Vec<u64> {
        self.rings.iter().map(|r| r.dropped() as u64).collect()
    }

    /// Total events recorded (including any later overwritten).
    pub fn total_events(&self) -> usize {
        self.rings.iter().map(|r| r.pushed()).sum()
    }

    /// Deterministic digest of the span structure: for each rank, the
    /// sequence of `(kind, name, virt_ns, arg)` with wall time omitted.
    /// Two runs with the same seed must produce identical span logs.
    pub fn span_log(&self) -> Vec<Vec<(EventKind, &'static str, u64, u64)>> {
        (0..self.n_ranks())
            .map(|r| {
                self.events(r)
                    .into_iter()
                    .map(|e| (e.kind, e.name, e.virt_ns, e.arg))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_per_rank() {
        let t = Tracer::new(2);
        t.begin(0, "phase", 100);
        t.instant(1, "tick", 100, 7);
        t.end(0, "phase", 250);
        let r0 = t.events(0);
        assert_eq!(r0.len(), 2);
        assert_eq!(r0[0].kind, EventKind::Begin);
        assert_eq!(r0[1].kind, EventKind::End);
        assert_eq!(r0[1].virt_ns, 250);
        assert!(r0[1].wall_ns >= r0[0].wall_ns);
        let r1 = t.events(1);
        assert_eq!(r1.len(), 1);
        assert_eq!((r1[0].name, r1[0].arg), ("tick", 7));
    }

    #[test]
    fn hist_registry_is_stable() {
        let t = Tracer::new(1);
        t.hist("flush_bytes").record(10);
        t.hist("batch").record(5);
        t.hist("flush_bytes").record(30);
        let snaps = t.hist_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, "flush_bytes");
        assert_eq!(snaps[0].1.count, 2);
        assert_eq!(snaps[1].1.count, 1);
    }

    #[test]
    fn flow_events_carry_id_and_tag() {
        let t = Tracer::new(2);
        assert!(t.flows_enabled());
        t.flow_send(0, "flow", 10, 0xABCD, 14);
        t.flow_recv(1, "flow", 20, 0xABCD, 14);
        let s = t.events(0);
        assert_eq!(s[0].kind, EventKind::FlowSend);
        assert_eq!((s[0].arg, s[0].arg2), (0xABCD, 14));
        let r = t.events(1);
        assert_eq!(r[0].kind, EventKind::FlowRecv);
        assert_eq!((r[0].arg, r[0].arg2), (0xABCD, 14));
        t.set_flows_enabled(false);
        assert!(!t.flows_enabled());
    }

    #[test]
    fn tag_names_register_and_overwrite() {
        let t = Tracer::new(1);
        assert_eq!(t.tag_name(14), None);
        t.name_tag(14, "Type 1");
        t.name_tag(15, "Type 2");
        t.name_tag(14, "Type 1b");
        assert_eq!(t.tag_name(14).as_deref(), Some("Type 1b"));
        assert_eq!(t.tag_name(15).as_deref(), Some("Type 2"));
    }

    #[test]
    fn span_log_omits_wall_time() {
        let t = Tracer::new(1);
        t.begin_arg(0, "iter", 0, 3);
        t.end(0, "iter", 1_000);
        let log = t.span_log();
        assert_eq!(
            log[0],
            vec![
                (EventKind::Begin, "iter", 0, 3),
                (EventKind::End, "iter", 1_000, 0)
            ]
        );
    }
}
