//! Minimal JSON value model, emitter, and parser.
//!
//! The workspace has no serde (offline build), so run reports and traces
//! are emitted and re-read through this hand-rolled implementation. It
//! supports the full JSON grammar except that numbers are held as `f64`
//! (plus an exact `i64` fast path for integers, which covers every counter
//! this crate emits below 2^53).

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Integer-valued number, emitted without a decimal point.
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Insertion-ordered object (key order is preserved on round-trip).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Number constructor that preserves integer-ness when exact.
    pub fn num(x: f64) -> JsonValue {
        if x.fract() == 0.0 && x.abs() < 9.0e15 {
            JsonValue::Int(x as i64)
        } else {
            JsonValue::Num(x)
        }
    }

    pub fn uint(x: u64) -> JsonValue {
        if x <= i64::MAX as u64 {
            JsonValue::Int(x as i64)
        } else {
            JsonValue::Num(x as f64)
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse a JSON document. Returns an error message with a byte offset
    /// on malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Emit with two-space indentation (stable field order).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // `{:?}` keeps round-trip precision for f64.
                    out.push_str(&format!("{:?}", x));
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        newline_indent(out, level + 1);
                        item.write(out, Some(level + 1));
                    } else {
                        item.write(out, None);
                    }
                }
                if let Some(level) = indent {
                    newline_indent(out, level);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let level = if let Some(level) = indent {
                        newline_indent(out, level + 1);
                        Some(level + 1)
                    } else {
                        None
                    };
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, level);
                }
                if let Some(level) = indent {
                    newline_indent(out, level);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    /// Compact emission (no whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::JsonValue as J;

    #[test]
    fn emit_compact_and_parse_back() {
        let v = J::Obj(vec![
            ("name".into(), J::str("dnnd \"run\"\n")),
            ("count".into(), J::Int(42)),
            ("ratio".into(), J::Num(0.375)),
            ("ok".into(), J::Bool(true)),
            ("none".into(), J::Null),
            (
                "items".into(),
                J::Arr(vec![J::Int(1), J::Int(-2), J::Num(3.5)]),
            ),
        ]);
        let text = v.to_string();
        let back = J::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trips_too() {
        let v = J::Arr(vec![
            J::Obj(vec![("a".into(), J::Arr(vec![]))]),
            J::Obj(vec![]),
        ]);
        assert_eq!(J::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = J::parse(r#"{"s": "a\tbé\\", "π": 3.15625}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\tbé\\");
        assert!((v.get("π").unwrap().as_f64().unwrap() - 3.15625).abs() < 1e-12);
    }

    #[test]
    fn integer_precision_preserved() {
        let big = (1u64 << 60) + 7;
        let text = J::uint(big).to_string();
        assert_eq!(J::parse(&text).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn rejects_malformed() {
        assert!(J::parse("{\"a\": }").is_err());
        assert!(J::parse("[1, 2").is_err());
        assert!(J::parse("hello").is_err());
        assert!(J::parse("{} trailing").is_err());
    }

    #[test]
    fn num_constructor_prefers_int() {
        assert_eq!(J::num(5.0), J::Int(5));
        assert_eq!(J::num(5.5), J::Num(5.5));
    }
}
