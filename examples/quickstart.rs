//! Quickstart: build a k-NN graph with distributed NN-Descent, optimize it,
//! and answer a few queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dataset::synth::{gaussian_mixture, split_queries, MixtureParams};
use dataset::{brute_force_queries, mean_recall, L2};
use dnnd::{build, DnndConfig};
use nnd::{search_batch, SearchParams};
use std::sync::Arc;
use ygm::World;

fn main() {
    // 1. A dataset: 2,000 points in 32 dimensions, with cluster structure.
    let full = gaussian_mixture(MixtureParams::embedding_like(2_000, 32), 42);
    let (base, queries) = split_queries(full, 100);
    let base = Arc::new(base);
    println!(
        "dataset: {} points, {} dims; {} held-out queries",
        base.len(),
        base.dim(),
        queries.len()
    );

    // 2. Build a k = 10 graph on 4 simulated ranks with the paper's
    //    optimized communication protocol, then run the Section 4.5 graph
    //    optimization (reverse-edge merge + prune to 1.5 * k).
    let world = World::new(4);
    let out = build(
        &world,
        &base,
        &L2,
        DnndConfig::new(10).seed(7).graph_opt(1.5),
    );
    println!(
        "built k-NNG in {} iterations; {} distance evals; {:.1} MB of messages; \
         virtual time {:.3}s (wall {:.2}s)",
        out.report.iterations,
        out.report.distance_evals,
        out.report.total.bytes as f64 / 1e6,
        out.report.sim_secs,
        out.report.wall_secs,
    );

    // 3. Query the graph with the greedy epsilon search.
    let batch = search_batch(
        &out.graph,
        &base,
        &L2,
        &queries,
        SearchParams::new(10).epsilon(0.2).entry_candidates(64),
    );
    let truth = brute_force_queries(&base, &queries, &L2, 10);
    let recall = mean_recall(&batch.ids, &truth);
    println!("queries: recall@10 = {recall:.4} at {:.0} qps", batch.qps);

    // 4. Peek at one answer.
    let q0_neighbors = &batch.ids[0];
    println!("query 0 nearest neighbors: {q0_neighbors:?}");
    assert!(recall > 0.9, "expected high recall, got {recall}");
    println!("quickstart OK");
}
