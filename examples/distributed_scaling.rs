//! Strong-scaling demo: the same k-NNG construction on 1..=16 simulated
//! ranks, reporting the virtual-clock construction time (the Figure 3
//! mechanism) and the message traffic, plus the optimized-vs-unoptimized
//! protocol comparison (the Figure 4 mechanism).
//!
//! ```text
//! cargo run --release --example distributed_scaling
//! ```

use dataset::presets::deep1b_like;
use dataset::L2;
use dnnd::{build, CommOpts, DnndConfig};
use std::sync::Arc;
use ygm::World;

fn main() {
    let set = Arc::new(deep1b_like(1_200, 5));
    println!(
        "dataset: DEEP-like, {} points x {} dims (f32)\n",
        set.len(),
        set.dim()
    );

    println!("strong scaling (k = 10, optimized protocol):");
    println!(
        "{:>6}  {:>12}  {:>10}  {:>12}  {:>10}",
        "ranks", "virtual s", "speedup", "messages", "MB sent"
    );
    let mut t1 = None;
    for ranks in [1usize, 2, 4, 8, 16] {
        let out = build(&World::new(ranks), &set, &L2, DnndConfig::new(10).seed(2));
        let t = out.report.sim_secs;
        let base = *t1.get_or_insert(t);
        println!(
            "{:>6}  {:>12.4}  {:>9.2}x  {:>12}  {:>10.1}",
            ranks,
            t,
            base / t,
            out.report.total.count,
            out.report.total.bytes as f64 / 1e6,
        );
    }

    println!("\nprotocol comparison on 8 ranks (k = 10):");
    for (label, opts) in [
        ("unoptimized (Fig 1a)", CommOpts::unoptimized()),
        ("optimized   (Fig 1b)", CommOpts::optimized()),
    ] {
        let out = build(
            &World::new(8),
            &set,
            &L2,
            DnndConfig::new(10).seed(2).comm_opts(opts),
        );
        let t = out.report.check_traffic();
        println!(
            "  {label}: {:>9} check messages, {:>6.1} MB, virtual {:.4}s",
            t.count,
            t.bytes as f64 / 1e6,
            out.report.sim_secs,
        );
    }
    println!("\nscaling demo OK");
}
