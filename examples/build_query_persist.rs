//! The paper's two-executable workflow (Section 5.1.3), in one program with
//! three separated stages that communicate **only** through the persistent
//! store — exactly how DNND uses Metall:
//!
//! 1. *Construction executable*: build the k-NNG distributed, persist the
//!    graph and the dataset into a store.
//! 2. *Optimization executable*: reopen the store, load the graph, apply
//!    the Section 4.5 optimizations (reverse-edge merge + prune), persist
//!    the optimized graph.
//! 3. *Query program*: reopen again, load the optimized graph and dataset,
//!    and serve ANN queries.
//!
//! ```text
//! cargo run --release --example build_query_persist
//! ```

use dataset::synth::{gaussian_mixture, split_queries, MixtureParams};
use dataset::{brute_force_queries, mean_recall, PointSet, L2};
use dnnd::{build, DnndConfig};
use metall::Store;
use nnd::{search_batch, KnnGraph, SearchParams};
use std::sync::Arc;
use ygm::World;

const K: usize = 10;

fn main() {
    let store_dir = std::env::temp_dir().join("dnnd-example-store");
    let _ = Store::destroy(&store_dir);

    let full = gaussian_mixture(MixtureParams::embedding_like(1_500, 24), 11);
    let (base, queries) = split_queries(full, 80);

    // ---- Stage 1: construction executable ----------------------------------
    {
        let base = Arc::new(base);
        let out = build(&World::new(4), &base, &L2, DnndConfig::new(K).seed(3));
        let mut store = Store::create(&store_dir).expect("create store");
        base.save(&mut store, "dataset").expect("persist dataset");
        out.graph.save(&mut store, "knng").expect("persist graph");
        println!(
            "stage 1 (construct): {} iterations, graph persisted to {} ({} objects, {} bytes)",
            out.report.iterations,
            store_dir.display(),
            store.len(),
            store.total_bytes(),
        );
    } // store and all in-memory state dropped: stage boundary

    // ---- Stage 2: optimization executable -----------------------------------
    {
        let mut store = Store::open(&store_dir).expect("reopen store");
        let graph = KnnGraph::load(&store, "knng").expect("load graph");
        let optimized = graph.optimize(K, 1.5);
        optimized
            .save(&mut store, "knng-optimized")
            .expect("persist optimized");
        println!(
            "stage 2 (optimize): merged reverse edges, pruned to {} max degree, {} edges",
            optimized.max_degree(),
            optimized.edge_count(),
        );
    }

    // ---- Stage 3: query program ---------------------------------------------
    {
        let store = Store::open(&store_dir).expect("reopen store");
        let base = PointSet::<Vec<f32>>::load(&store, "dataset").expect("load dataset");
        let graph = KnnGraph::load(&store, "knng-optimized").expect("load optimized graph");
        let batch = search_batch(
            &graph,
            &base,
            &L2,
            &queries,
            SearchParams::new(10).epsilon(0.2).entry_candidates(64),
        );
        let truth = brute_force_queries(&base, &queries, &L2, 10);
        let recall = mean_recall(&batch.ids, &truth);
        println!(
            "stage 3 (query): recall@10 = {recall:.4} at {:.0} qps over {} queries",
            batch.qps,
            queries.len()
        );
        assert!(recall > 0.9, "expected high recall, got {recall}");
    }

    Store::destroy(&store_dir).expect("cleanup");
    println!("pipeline OK");
}
