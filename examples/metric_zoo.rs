//! NN-Descent's versatility claim: the same engine, unchanged, over four
//! different similarity metrics and three point representations — the
//! reason the paper picks NN-Descent over metric-specialized indices.
//!
//! Builds a small graph per metric (distributed, 3 ranks) and reports its
//! recall against brute force.
//!
//! ```text
//! cargo run --release --example metric_zoo
//! ```

use dataset::metric::{Cosine, Hamming, Jaccard, L2};
use dataset::point::Point;
use dataset::presets::{bigann_like, glove25_like, kosarak_like};
use dataset::synth::uniform;
use dataset::{brute_force_knng, mean_recall, PointSet};
use dnnd::{build, DnndConfig};
use std::sync::Arc;
use ygm::World;

const K: usize = 8;

fn demo<P: Point, M: dataset::batch::BatchMetric<P>>(label: &str, set: PointSet<P>, metric: M) {
    let set = Arc::new(set);
    let out = build(&World::new(3), &set, &metric, DnndConfig::new(K).seed(13));
    let truth = brute_force_knng(&set, &metric, K);
    let recall = mean_recall(&out.graph.neighbor_ids(), &truth);
    println!(
        "{label:<32} metric={:<8} n={:<5} recall={recall:.4} iters={} msgs={}",
        metric.name(),
        set.len(),
        out.report.iterations,
        out.report.total.count,
    );
}

fn main() {
    println!("one engine, many metrics (k = {K}, 3 simulated ranks):\n");

    // Dense f32 under Euclidean distance.
    demo("uniform f32 (L2)", uniform(600, 16, 1), L2);

    // Unit-norm embeddings under cosine distance (GloVe-like).
    demo(
        "GloVe-like embeddings (cosine)",
        glove25_like(600, 2),
        Cosine,
    );

    // Byte vectors under L2 (BigANN-like) — half the message bytes.
    demo("BigANN-like u8 vectors (L2)", bigann_like(600, 3), L2);

    // Sparse click-stream sets under Jaccard (Kosarak-like).
    demo(
        "Kosarak-like sparse sets (Jaccard)",
        kosarak_like(400, 4),
        Jaccard,
    );

    // Byte vectors under Hamming — a metric the paper never runs, added to
    // show the engine is genuinely metric-generic.
    demo("random bytes (Hamming)", bigann_like(400, 5), Hamming);

    println!("\nmetric zoo OK");
}
