//! The paper's Section 7 future work, working: "new data points may be
//! added/deleted, followed by a short graph refinement phase, which will
//! fit NN-Descent's iterative nature well."
//!
//! This example builds a graph, then (a) streams in new points with short
//! refinement passes instead of rebuilding, and (b) deletes points with
//! local repair — comparing cost and quality against a from-scratch build
//! at every step.
//!
//! ```text
//! cargo run --release --example incremental_updates
//! ```

use dataset::synth::{gaussian_mixture, MixtureParams};
use dataset::{brute_force_knng, mean_recall, PointSet, L2};
use nnd::{build, insert_points, remove_points, NnDescentParams};

const K: usize = 10;

fn main() {
    let full = gaussian_mixture(MixtureParams::embedding_like(2_000, 16), 77);
    let params = NnDescentParams::new(K).seed(5);

    // Start with 1,400 points.
    let mut base = PointSet::new(full.points()[..1_400].to_vec());
    let (mut graph, initial_stats) = build(&base, &L2, params);
    println!(
        "initial build: {} points, {} iterations, {} distance evals",
        base.len(),
        initial_stats.iterations,
        initial_stats.distance_evals
    );

    // Stream in 3 batches of 200 points each, refining instead of rebuilding.
    for step in 0..3 {
        let new_len = 1_400 + (step + 1) * 200;
        let grown = PointSet::new(full.points()[..new_len].to_vec());
        let (g2, refine_stats) = insert_points(&graph, &base, &grown, &L2, params, 3);
        let (_, rebuild_stats) = build(&grown, &L2, params);
        let truth = brute_force_knng(&grown, &L2, K);
        let recall = mean_recall(&g2.neighbor_ids(), &truth);
        println!(
            "insert batch {}: {} -> {} points | refine {} evals vs rebuild {} evals ({:.1}x cheaper) | recall {:.4}",
            step + 1,
            base.len(),
            grown.len(),
            refine_stats.distance_evals,
            rebuild_stats.distance_evals,
            rebuild_stats.distance_evals as f64 / refine_stats.distance_evals.max(1) as f64,
            recall,
        );
        assert!(recall > 0.9, "refined recall dropped to {recall}");
        base = grown;
        graph = g2;
    }

    // Delete 150 points, repair locally, then one short refinement pass.
    let gone: Vec<u32> = (0..150).map(|i| i * 13).collect();
    let (repaired, smaller_base, _back) = remove_points(&graph, &base, &L2, &gone, K);
    let truth = brute_force_knng(&smaller_base, &L2, K);
    let repaired_recall = mean_recall(&repaired.neighbor_ids(), &truth);
    let (refined, _) = insert_points(&repaired, &smaller_base, &smaller_base, &L2, params, 2);
    let refined_recall = mean_recall(&refined.neighbor_ids(), &truth);
    println!(
        "delete {} points: repair-only recall {:.4} -> after 2 refinement iters {:.4}",
        gone.len(),
        repaired_recall,
        refined_recall
    );
    assert!(refined_recall > 0.9);
    println!("incremental updates OK");
}
